#pragma once
/// \file streaming_dedisperser.hpp
/// \brief Streaming real-time dedispersion sessions (single- and multi-beam).
///
/// The batch API (`pipeline::Dedisperser`) needs the whole channels ×
/// in_samples matrix up front; a survey backend has samples *arriving*. A
/// StreamingDedisperser is the session object in between:
///
///   ring (bounded, backpressure)          [optional, consume()]
///     └─ OverlapChunker                   assembles overlap-carry windows
///          └─ DedispEngine                any streaming-capable engine
///               └─ sink callback          dms × chunk output (+ detection)
///
/// The engine is selected by registry id (StreamingOptions::engine); a
/// session requires the supports_streaming capability and widens the
/// chunker's carried overlap by the engine's declared input_padding, so an
/// engine that reads past in_samples (subband) streams real samples, not
/// zero padding.
///
/// Feed raw samples at any granularity with push(); full chunk windows are
/// handed to a dedicated compute thread (double-buffered: the next window
/// assembles while the previous one dedisperses) and delivered to the sink
/// in chunk order. close() flushes the final partial chunk, so a session
/// that saw the same samples as a batch run emits, concatenated, the
/// bitwise-identical output matrix.
///
/// The sink runs on the compute thread (async mode) or the pushing thread
/// (sync mode); it must not call back into the session.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/array2d.hpp"
#include "common/timer.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/kernel_config.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine.hpp"
#include "pipeline/multibeam.hpp"
#include "pipeline/sharding.hpp"
#include "resilience/supervisor.hpp"
#include "sky/detection.hpp"
#include "stream/chunker.hpp"
#include "stream/latency.hpp"
#include "stream/ring_buffer.hpp"
#include "telemetry/metrics.hpp"
#include "tuner/tuning_cache.hpp"

namespace ddmc::stream {

/// One delivered chunk: dms × out_samples trial matrix plus accounting.
struct StreamChunk {
  std::size_t index = 0;         ///< chunk sequence number
  std::size_t first_sample = 0;  ///< global output sample of column 0
  /// Chunk length: the session's chunk size for full chunks; the flush
  /// chunk covers whatever remained (usually shorter, at most chunk size
  /// + the engine's input padding − 1).
  std::size_t out_samples = 0;
  /// Dedispersed output; valid only during the sink call.
  ConstView2D<float> output;
  /// Strongest candidate in this chunk (StreamingOptions::detect).
  std::optional<sky::DetectionResult> detection;
  ChunkTiming timing;
};

struct StreamingOptions {
  /// Registry id of the engine the session runs; must report the
  /// supports_streaming capability.
  std::string engine = engine::kDefaultEngineId;
  /// Host-execution knobs passed to the engine factory (threads, staging,
  /// SIMD-vs-scalar).
  dedisp::CpuKernelOptions cpu;
  /// Two-stage split of the subband engine (adapted to the plan by gcd).
  dedisp::SubbandConfig subband;
  /// Scan each chunk for its strongest candidate and attach it.
  bool detect = false;
  /// Dedisperse on a dedicated compute thread, double-buffered against
  /// assembly; false runs chunks inline on the pushing thread
  /// (deterministic profiling, tests).
  bool async = true;
  /// ≥ 2: each full chunk's DM grid is sharded across this many pool
  /// workers (pipeline::ShardedDedisperser) behind the existing double
  /// buffer, instead of one engine call; 0/1 keeps the single engine.
  /// Output stays bitwise identical either way. Additionally requires the
  /// engine's supports_sharding capability.
  std::size_t shard_workers = 0;
  /// Supervision of the sharded executor's worker jobs (shard_workers
  /// >= 2): per-shard bounded retry, optionally reacquisition. The default
  /// (one attempt) fails the whole chunk on the first shard error, leaving
  /// recovery to the chunk-level watchdog below; a shard-level retry budget
  /// absorbs transient faults without repeating the chunk's other shards.
  resilience::SupervisionPolicy shard_supervision;
  /// Watchdog ladder on chunk failure / deadline overrun (single-beam
  /// sessions only): retry transient failures → skip the chunk with gap
  /// accounting → degrade to a cheaper streaming-capable engine. Disabled
  /// by default: an unsupervised session latches the first error exactly
  /// as before. When enabled with a degradation target available, the
  /// chunker's carried overlap is widened to the larger of the two
  /// engines' input_padding so the fallback streams real samples too.
  resilience::StreamPolicy supervision;
};

/// Single-beam streaming session.
class StreamingDedisperser {
 public:
  using Sink = std::function<void(const StreamChunk&)>;

  /// \p chunk_plan fixes the instance (observation, DM grid) and the chunk
  /// length via its out_samples; build it with Plan::with_output_samples or
  /// Plan::with_chunk. \p config must validate against it on the selected
  /// engine (engine-native axes; empty = the engine's defaults).
  StreamingDedisperser(dedisp::Plan chunk_plan, engine::EngineConfig config,
                       Sink sink, StreamingOptions options = {});

  /// Kernel-shape convenience: \p config re-encoded as the kernel axes.
  StreamingDedisperser(dedisp::Plan chunk_plan, dedisp::KernelConfig config,
                       Sink sink, StreamingOptions options = {});

  /// Tune-on-first-use: resolve the engine config from \p cache before the
  /// session starts — an exact hit or a nearest-neighbor transfer costs no
  /// measurements (the startup path a real-time backend wants), a cold
  /// cache runs the guided search once on the chunk plan and stores the
  /// winner for every later session. When \p tuning.engines is empty only
  /// \p options.engine is tuned; listing several ids races them by
  /// measured wall seconds and the session *adopts the winner* before it
  /// starts: the streaming-capability gate and the chunker's carried
  /// overlap are taken from the winning engine, so a winner with a larger
  /// input_padding streams real samples, not zero padding. The engine
  /// knobs of \p tuning.host are overridden by \p options.cpu so the tuned
  /// signature matches what the session will run; inspect tuning_outcome()
  /// for what happened.
  StreamingDedisperser(dedisp::Plan chunk_plan, tuner::TuningCache& cache,
                       Sink sink, StreamingOptions options = {},
                       tuner::GuidedTuningOptions tuning = {});

  ~StreamingDedisperser();

  StreamingDedisperser(const StreamingDedisperser&) = delete;
  StreamingDedisperser& operator=(const StreamingDedisperser&) = delete;

  const dedisp::Plan& chunk_plan() const { return plan_; }
  std::size_t chunk_samples() const { return plan_.out_samples(); }
  std::size_t channels() const { return plan_.channels(); }

  /// Feed samples.cols() samples (channels × n, any n ≥ 0 — down to one
  /// sample). Completed chunks are dispatched as a side effect; blocks only
  /// while both window buffers are full (compute backpressure). Rethrows a
  /// sink/kernel failure from the compute thread.
  void push(ConstView2D<float> samples);

  /// Drain \p ring until it is closed and empty, push()ing everything.
  void consume(SampleRing& ring);

  /// Flush the final partial chunk (if any), stop the compute thread and
  /// deliver everything outstanding. Idempotent; called by the destructor.
  /// Rethrows the first sink/kernel failure, if any.
  void close();

  /// Chunks delivered to the sink so far.
  std::size_t chunks_emitted() const;

  /// Latency/throughput statistics of the chunks delivered so far
  /// (including gap accounting for chunks the watchdog skipped).
  LatencyReport latency() const;

  /// Snapshot of the supervised session's health: retries, skips with
  /// their gaps, deadline overruns, and the active (possibly degraded)
  /// engine. Meaningful counters require StreamingOptions::supervision
  /// .enabled; active_engine is maintained either way. The numeric fields
  /// are assembled from this session's registry counters (one source of
  /// truth with the exporters); the gaps list and the engine identity live
  /// on the session.
  resilience::StreamHealth health() const;

  /// Whole-session traffic aggregate: EngineRun counters and busy seconds
  /// over every chunk, including the DM-sharded executor's jobs when
  /// StreamingOptions::shard_workers routes full chunks through it.
  engine::SessionTraffic telemetry() const;

  /// The session label this session's registry metrics carry.
  const std::string& session_label() const { return tracker_.session(); }

  /// How the cache-constructed session got its config (empty when the
  /// explicit-config constructor was used).
  const std::optional<tuner::GuidedTuningOutcome>& tuning_outcome() const {
    return tuning_outcome_;
  }

 private:
  /// Plan + resolved tuning + the options the session will actually run
  /// (the tuning race's winning engine adopted into options.engine), so the
  /// cache lookup runs exactly once before the delegated constructor sizes
  /// the chunker and starts the compute thread.
  struct TunedPlan {
    dedisp::Plan plan;
    StreamingOptions options;
    tuner::GuidedTuningOutcome outcome;
  };
  static TunedPlan resolve_tuning(dedisp::Plan chunk_plan,
                                  tuner::TuningCache& cache,
                                  StreamingOptions options,
                                  tuner::GuidedTuningOptions tuning);
  StreamingDedisperser(TunedPlan tuned, Sink sink);

  struct Job {
    std::size_t index = 0;
    std::size_t first_sample = 0;
    std::size_t out_samples = 0;
    /// Input columns of this job's window. Full chunks carry the whole
    /// window (out + overlap incl. engine padding); the final partial
    /// flush carries only what was actually fed — the engine zero-pads
    /// the rest, exactly as a batch run over the same samples would.
    std::size_t in_cols = 0;
    double assembled_at = 0.0;  ///< session-clock time the window completed
  };

  void submit(ConstView2D<float> window, std::size_t out_samples);
  void run_job(const Job& job, ConstView2D<float> input);
  /// Watchdog rung 2: account the never-emitted chunk as a gap and apply
  /// degradation pressure. Called from run_job with the terminal failure.
  void skip_chunk_with_gap(const Job& job, const std::string& reason);
  /// Apply one unit of degradation pressure (a skip or a deadline
  /// overrun); a clean chunk resets the streak. Switches to the prebuilt
  /// degradation target when the streak reaches the policy threshold.
  void degrade_pressure(std::unique_lock<std::mutex>& lock);
  void worker_loop();
  void rethrow_pending_error();

  dedisp::Plan plan_;
  engine::EngineConfig config_;
  Sink sink_;
  StreamingOptions options_;
  std::shared_ptr<const engine::DedispEngine> engine_;
  /// Prebuilt degradation target (supervision enabled and a capable,
  /// cheaper engine exists); building it up front means the switch is a
  /// pointer swap on the compute path, never a mid-session factory call
  /// that could itself fail.
  std::shared_ptr<const engine::DedispEngine> degrade_engine_;
  std::string degrade_engine_id_;
  std::optional<tuner::GuidedTuningOutcome> tuning_outcome_;
  /// Sharded executor for full chunks (options_.shard_workers ≥ 2); the
  /// final partial chunk keeps the single-engine 1×1 path, whose output is
  /// bitwise identical anyway.
  std::unique_ptr<pipeline::ShardedDedisperser> sharded_;
  OverlapChunker chunker_;
  Stopwatch session_clock_;
  LatencyTracker tracker_;  // guarded by mutex_ in async mode

  // Double buffer: the chunker assembles into its own window while the
  // compute thread reads job_input_.
  Array2D<float> job_input_;
  /// Output buffer reused by every full chunk (one job runs at a time);
  /// the sink's view into it is valid only during the sink call.
  Array2D<float> out_full_;
  Job job_;
  bool job_pending_ = false;
  bool stop_ = false;
  bool closed_ = false;
  std::exception_ptr error_;
  std::size_t emitted_ = 0;
  /// Only the gaps list, active_engine and degraded flag are kept here
  /// (guarded by mutex_); every numeric counter lives in the session's
  /// registry metrics below and is folded back in by health().
  resilience::StreamHealth health_;
  /// Session-labeled supervision counters — the numeric source of truth
  /// behind health() and the exporters.
  std::shared_ptr<telemetry::Counter> retries_metric_;
  std::shared_ptr<telemetry::Counter> chunks_retried_metric_;
  std::shared_ptr<telemetry::Counter> chunks_skipped_metric_;
  std::shared_ptr<telemetry::Counter> overruns_metric_;
  std::shared_ptr<telemetry::Counter> degradations_metric_;
  engine::SessionTraffic traffic_;      // guarded by mutex_
  std::size_t pressure_streak_ = 0;     // guarded by mutex_
  /// Set once by the compute path when the watchdog switches engines; read
  /// by the compute path only (health_.degraded mirrors it for health()).
  bool degraded_ = false;
  mutable std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::thread worker_;
};

/// One delivered multi-beam chunk: per-beam trial matrices plus the
/// strongest candidate across beams.
struct MultiBeamStreamChunk {
  std::size_t index = 0;
  std::size_t first_sample = 0;
  std::size_t out_samples = 0;
  /// outputs[beam] is dms × out_samples; valid only during the sink call.
  const std::vector<Array2D<float>>* outputs = nullptr;
  std::optional<pipeline::MultiBeamDedisperser::BeamCandidate> candidate;
  ChunkTiming timing;
};

/// Multi-beam streaming session: one overlap-carry chunker per beam, fed in
/// lockstep, dedispersed with the MultiBeamDedisperser decomposition (beams
/// are the parallel dimension over the worker pool). Synchronous: chunks
/// run on the pushing thread, which is itself typically one consumer thread
/// of a beam-former.
class MultiBeamStreamingDedisperser {
 public:
  using Sink = std::function<void(const MultiBeamStreamChunk&)>;

  MultiBeamStreamingDedisperser(dedisp::Plan chunk_plan,
                                engine::EngineConfig config,
                                std::size_t beams, Sink sink,
                                StreamingOptions options = {});

  /// Kernel-shape convenience: \p config re-encoded as the kernel axes.
  MultiBeamStreamingDedisperser(dedisp::Plan chunk_plan,
                                dedisp::KernelConfig config,
                                std::size_t beams, Sink sink,
                                StreamingOptions options = {});

  const dedisp::Plan& chunk_plan() const { return plan_; }
  std::size_t beams() const { return chunkers_.size(); }

  /// Feed the same number of new samples for every beam
  /// (beam_samples.size() == beams(), each channels × n with one shared n).
  void push(const std::vector<ConstView2D<float>>& beam_samples);

  /// Flush the final partial chunk (if any). Idempotent.
  void close();

  std::size_t chunks_emitted() const { return emitted_; }
  LatencyReport latency() const { return tracker_.report(); }

  /// Traffic aggregate of the session's sharded executor (full chunks when
  /// shard_workers ≥ 2); the beam-parallel path does not report EngineRuns.
  engine::SessionTraffic telemetry() const;

 private:
  void run_chunk(const dedisp::Plan& plan, const engine::EngineConfig& config,
                 const std::vector<ConstView2D<float>>& windows,
                 std::size_t index, std::size_t first_sample);

  dedisp::Plan plan_;
  engine::EngineConfig config_;
  Sink sink_;
  StreamingOptions options_;
  std::shared_ptr<const engine::DedispEngine> engine_;
  /// Sharded executor reused by every full chunk (shard_workers ≥ 2);
  /// per-chunk construction would pay pool spawn + planning each time.
  std::unique_ptr<pipeline::ShardedDedisperser> sharded_;
  std::vector<OverlapChunker> chunkers_;
  Stopwatch session_clock_;
  LatencyTracker tracker_;
  std::size_t emitted_ = 0;
  bool closed_ = false;
};

}  // namespace ddmc::stream
