#pragma once
/// \file chunker.hpp
/// \brief Overlap-carry chunking: arbitrary-granularity sample feeds →
/// fixed dedispersion windows that make chunked output bitwise identical
/// to batch output.
///
/// Dedispersing output samples [t0, t0 + out) reads input samples
/// [t0, t0 + out + max_delay): every chunk's input window overlaps the next
/// chunk's by max_delay samples (the dispersion sweep of the highest trial).
/// The chunker assembles those windows from a stream fed at any granularity
/// — down to one sample at a time — and *carries* the max_delay-sample tail
/// from window to window instead of asking the producer to re-send it.
///
/// Because window k's content equals columns [k·out, k·out + out + max_delay)
/// of the batch input matrix exactly, running the same kernel on each window
/// performs the identical float additions in the identical order, so the
/// concatenated chunk outputs are bitwise equal to one batch run — the
/// property tests/stream_test.cpp asserts.

#include <cstddef>

#include "common/array2d.hpp"
#include "dedisp/plan.hpp"

namespace ddmc::stream {

/// Assembles overlap-carry chunk windows for one beam.
class OverlapChunker {
 public:
  /// \p chunk_plan is a plan whose out_samples is the chunk length
  /// (typically Plan::with_chunk or Plan::with_output_samples); its
  /// in_samples must equal out_samples + max_delay — i.e. an unrounded
  /// chunk-window plan, not a full-seconds batch plan. \p extra_overlap
  /// widens the carried overlap beyond max_delay (an engine's declared
  /// input_padding: the subband engine's split-delay rounding reads up to
  /// two columns past in_samples, and carrying real samples for them keeps
  /// chunked output identical to a batch run over a padded input).
  explicit OverlapChunker(const dedisp::Plan& chunk_plan,
                          std::size_t extra_overlap = 0);

  std::size_t channels() const { return window_.rows(); }
  /// Output samples emitted per full chunk.
  std::size_t chunk_out() const { return chunk_out_; }
  /// Samples carried between consecutive windows (the plan's max_delay
  /// plus the construction-time extra_overlap).
  std::size_t overlap() const { return overlap_; }
  /// Input samples per assembled window (= chunk_out + overlap).
  std::size_t window_samples() const { return window_.cols(); }

  /// Absorb up to samples.cols() − offset samples starting at column
  /// \p offset, stopping when the current window fills. Returns the number
  /// absorbed; the caller loops feed → (ready? emit, advance) until its
  /// samples are exhausted, which keeps the chunker's memory bounded at one
  /// window regardless of feed granularity.
  std::size_t feed(ConstView2D<float> samples, std::size_t offset = 0);

  /// Assembled columns of the current window (0 after skip_chunk(),
  /// overlap() right after advance()).
  std::size_t filled() const { return filled_; }

  /// True when a full window is assembled and can be dedispersed.
  bool ready() const { return filled_ == window_.cols(); }

  /// The assembled channels × window_samples() input window (valid while
  /// ready()); invalidated by advance() and feed().
  ConstView2D<float> chunk_input() const;

  /// Index of the chunk currently assembling / assembled.
  std::size_t chunk_index() const { return chunk_index_; }
  /// Global output sample index of the current chunk's first column.
  std::size_t first_out_sample() const { return chunk_index_ * chunk_out_; }

  /// Consume the emitted chunk: carry the trailing overlap() samples to the
  /// window's front and start assembling the next chunk.
  void advance();

  /// Zero-copy accounting: the caller dedispersed window chunk_index()
  /// directly from its own contiguous sample block, so whatever prefix was
  /// assembled here is a duplicate of block content. Advances the chunk
  /// index and empties the window; the caller must resume feeding from
  /// global input column chunk_index() · chunk_out() afterwards.
  void skip_chunk();

  /// Output samples a final partial chunk would emit from the samples
  /// buffered so far (0 while nothing beyond the carried history is
  /// buffered). Only the plan's max_delay counts as history: the first
  /// max_delay samples of the stream produce no output, exactly as in a
  /// batch run, but the engine's extra_overlap does *not* cost output —
  /// an engine that reads past the fed samples zero-pads at stream end,
  /// exactly as a batch run over the same samples would, so feeding a
  /// session the batch input yields the batch output count.
  std::size_t pending_out() const;

  /// Input window of the final partial chunk: channels × (max_delay +
  /// pending_out() + whatever extra_overlap columns were actually fed).
  /// Valid while pending_out() > 0 and no further feed() happens;
  /// dedisperse it with a plan of pending_out() output samples.
  ConstView2D<float> partial_input() const;

 private:
  Array2D<float> window_;  // channels × (chunk_out + overlap)
  std::size_t chunk_out_ = 0;
  std::size_t overlap_ = 0;       // carried samples: max_delay + extra
  std::size_t data_overlap_ = 0;  // history that costs output: max_delay
  std::size_t filled_ = 0;  // assembled columns of the current window
  std::size_t chunk_index_ = 0;
};

}  // namespace ddmc::stream
