#include "stream/latency.hpp"

#include <utility>

#include "common/expect.hpp"

namespace ddmc::stream {

LatencyTracker::LatencyTracker(std::size_t capacity, std::string session)
    : session_(session.empty() ? telemetry::next_session_label("stream")
                               : std::move(session)) {
  DDMC_REQUIRE(capacity > 0, "latency tracker needs a positive capacity");
  auto& registry = telemetry::MetricsRegistry::instance();
  const telemetry::Labels labels = {{"session", session_}};
  latency_ = registry.histogram("ddmc.stream.chunk_latency_seconds", labels,
                                capacity);
  compute_ = registry.histogram("ddmc.stream.chunk_compute_seconds", labels,
                                capacity);
  data_seconds_ =
      registry.counter("ddmc.stream.data_seconds_total", labels);
  gap_chunks_ = registry.counter("ddmc.stream.gap_chunks_total", labels);
  gap_data_seconds_ =
      registry.counter("ddmc.stream.gap_data_seconds_total", labels);
}

void LatencyTracker::record(const ChunkTiming& timing) {
  latency_->record(timing.latency_seconds);
  compute_->record(timing.compute_seconds);
  data_seconds_->add(timing.data_seconds);
}

void LatencyTracker::record_gap(double data_seconds) {
  gap_chunks_->increment();
  gap_data_seconds_->add(data_seconds);
}

LatencyReport LatencyTracker::report() const {
  // Assembled entirely from the registry-owned metrics: this report, a
  // Prometheus scrape and snapshot_json() cannot disagree.
  const telemetry::Histogram::Snapshot lat = latency_->snapshot();
  const telemetry::Histogram::Snapshot comp = compute_->snapshot();
  LatencyReport r;
  r.chunks = lat.count;
  r.gap_chunks = static_cast<std::size_t>(gap_chunks_->value());
  r.gap_data_seconds = gap_data_seconds_->value();
  if (r.chunks == 0) return r;
  r.latency_window = lat.window;
  r.data_seconds = data_seconds_->value();
  r.compute_seconds = comp.sum;
  r.p50_latency = lat.p50;
  r.p95_latency = lat.p95;
  r.p99_latency = lat.p99;
  r.max_latency = lat.max;
  r.mean_compute = comp.mean;
  if (r.compute_seconds > 0.0) {
    r.real_time_margin = r.data_seconds / r.compute_seconds;
  }
  if (r.data_seconds > 0.0) {
    r.seconds_per_data_second = r.compute_seconds / r.data_seconds;
  }
  return r;
}

}  // namespace ddmc::stream
