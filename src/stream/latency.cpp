#include "stream/latency.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace ddmc::stream {

double percentile_sorted(std::span<const double> sorted, double p) {
  DDMC_REQUIRE(!sorted.empty(), "percentile of an empty set");
  DDMC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile rank out of [0, 100]");
  // Nearest-rank: the smallest value with at least p% of the set at or
  // below it.
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

double percentile(std::span<const double> values, double p) {
  DDMC_REQUIRE(!values.empty(), "percentile of an empty set");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

LatencyTracker::LatencyTracker(std::size_t capacity) : capacity_(capacity) {
  DDMC_REQUIRE(capacity_ > 0, "latency tracker needs a positive capacity");
  latencies_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void LatencyTracker::record(const ChunkTiming& timing) {
  if (latencies_.size() < capacity_) {
    latencies_.push_back(timing.latency_seconds);
  } else {
    latencies_[next_] = timing.latency_seconds;  // overwrite the oldest
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
  max_latency_ = std::max(max_latency_, timing.latency_seconds);
  compute_.add(timing.compute_seconds);
  data_seconds_ += timing.data_seconds;
  compute_seconds_ += timing.compute_seconds;
}

void LatencyTracker::record_gap(double data_seconds) {
  ++gap_chunks_;
  gap_data_seconds_ += data_seconds;
}

LatencyReport LatencyTracker::report() const {
  LatencyReport r;
  r.chunks = recorded_;
  r.gap_chunks = gap_chunks_;
  r.gap_data_seconds = gap_data_seconds_;
  if (r.chunks == 0) return r;
  r.data_seconds = data_seconds_;
  r.compute_seconds = compute_seconds_;
  // One bounded sort serves every percentile — report() may be polled per
  // chunk, and the window never exceeds capacity().
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  r.latency_window = sorted.size();
  r.p50_latency = percentile_sorted(sorted, 50.0);
  r.p95_latency = percentile_sorted(sorted, 95.0);
  r.p99_latency = percentile_sorted(sorted, 99.0);
  r.max_latency = max_latency_;
  r.mean_compute = compute_.mean();
  if (compute_seconds_ > 0.0) {
    r.real_time_margin = data_seconds_ / compute_seconds_;
  }
  if (data_seconds_ > 0.0) {
    r.seconds_per_data_second = compute_seconds_ / data_seconds_;
  }
  return r;
}

}  // namespace ddmc::stream
