#include "stream/latency.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace ddmc::stream {

double percentile(std::span<const double> values, double p) {
  DDMC_REQUIRE(!values.empty(), "percentile of an empty set");
  DDMC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile rank out of [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of the set at or
  // below it.
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

void LatencyTracker::record(const ChunkTiming& timing) {
  latencies_.push_back(timing.latency_seconds);
  compute_.add(timing.compute_seconds);
  data_seconds_ += timing.data_seconds;
  compute_seconds_ += timing.compute_seconds;
}

LatencyReport LatencyTracker::report() const {
  LatencyReport r;
  r.chunks = latencies_.size();
  if (r.chunks == 0) return r;
  r.data_seconds = data_seconds_;
  r.compute_seconds = compute_seconds_;
  // One sort serves every percentile — report() may be polled per chunk.
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = [&](double p) {
    const double k = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
    const std::size_t idx = k <= 1.0 ? 0 : static_cast<std::size_t>(k) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
  };
  r.p50_latency = rank(50.0);
  r.p95_latency = rank(95.0);
  r.p99_latency = rank(99.0);
  r.max_latency = sorted.back();
  r.mean_compute = compute_.mean();
  if (compute_seconds_ > 0.0) {
    r.real_time_margin = data_seconds_ / compute_seconds_;
  }
  if (data_seconds_ > 0.0) {
    r.seconds_per_data_second = compute_seconds_ / data_seconds_;
  }
  return r;
}

}  // namespace ddmc::stream
