#pragma once
/// \file ring_buffer.hpp
/// \brief Bounded multi-channel sample ring with backpressure.
///
/// The ingest side of the streaming subsystem: a producer (receiver thread,
/// packet reader, signal generator) pushes channelized time samples, a
/// consumer (the StreamingDedisperser) pops them. Capacity is a hard bound —
/// when the consumer falls behind, push() blocks instead of growing an
/// unbounded queue, which is the backpressure a real-time backend needs to
/// notice that it is *not* keeping up rather than silently eating memory.
///
/// A "sample" throughout is one time sample across all channels (a
/// channels-tall column). Views passed in and out are channels × n matrices,
/// the same layout every kernel in the repository uses.

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>

#include "common/array2d.hpp"

namespace ddmc::stream {

/// Bounded FIFO of multi-channel samples. Thread-safe for one producer and
/// any number of consumers. Multiple producers are memory-safe but not
/// stream-correct: a blocking push() that waits for space mid-block can
/// interleave its remaining samples with another producer's — and a sample
/// stream has exactly one time order, so give each producer its own ring.
///
/// Failure propagation: backpressure means a producer can be *asleep inside
/// push()* when the consuming session dies — without an abort path it would
/// sleep forever, because the only thing that frees space is the consumer
/// that no longer exists. fail() poisons the ring: every blocked and future
/// push/pop throws a resilience::TransientError naming the reason, so the
/// producer unblocks promptly and its supervisor can reconnect or shut the
/// stream down.
class SampleRing {
 public:
  /// Ring holding up to \p capacity_samples samples of \p channels channels.
  SampleRing(std::size_t channels, std::size_t capacity_samples);

  std::size_t channels() const { return buf_.rows(); }
  std::size_t capacity() const { return buf_.cols(); }
  /// Samples currently buffered (moment-in-time, for monitoring).
  std::size_t size() const;
  bool closed() const;

  /// Producer: append samples.cols() samples, blocking while the ring is
  /// full (backpressure). Samples may be absorbed in several segments as
  /// the consumer frees space. Throws ddmc::invalid_argument if the ring
  /// has been closed or the channel count mismatches.
  void push(ConstView2D<float> samples);

  /// Producer: all-or-nothing non-blocking append. Returns false (and
  /// absorbs nothing) when fewer than samples.cols() slots are free.
  bool try_push(ConstView2D<float> samples);

  /// Producer: no more samples will arrive. Consumers drain the remaining
  /// buffered samples, then pop() returns 0. Idempotent.
  void close();

  /// Either side: poison the ring — the stream is dead, not merely ended.
  /// Every blocked or future push() and pop() throws
  /// resilience::TransientError("SampleRing aborted: " + reason); buffered
  /// samples are NOT drained (unlike close(), there is no consumer left to
  /// trust them to). Idempotent; the first reason wins.
  void fail(const std::string& reason);

  /// True once fail() has been called.
  bool failed() const;

  /// Consumer: copy up to dst.cols() samples into \p dst, blocking until at
  /// least one sample is available or the ring is closed. Returns the number
  /// of samples written; 0 means closed-and-drained.
  std::size_t pop(View2D<float> dst);

 private:
  // Requires mutex_ held; copies n samples in/out at the ring positions.
  void copy_in(ConstView2D<float> src, std::size_t src_col, std::size_t n);
  void copy_out(View2D<float> dst, std::size_t n);

  // Requires mutex_ held; throws when the ring has been poisoned.
  void throw_if_failed() const;

  Array2D<float> buf_;  // channels × capacity, circular over columns
  std::size_t head_ = 0;   // oldest buffered sample's column
  std::size_t count_ = 0;  // buffered samples
  bool closed_ = false;
  bool failed_ = false;
  std::string fail_reason_;
  mutable std::mutex mutex_;
  std::condition_variable cv_space_;  // signalled when samples are popped
  std::condition_variable cv_data_;   // signalled when samples are pushed
};

}  // namespace ddmc::stream
