#pragma once
/// \file ring_buffer.hpp
/// \brief Bounded multi-channel sample ring with backpressure.
///
/// The ingest side of the streaming subsystem: a producer (receiver thread,
/// packet reader, signal generator) pushes channelized time samples, a
/// consumer (the StreamingDedisperser) pops them. Capacity is a hard bound —
/// when the consumer falls behind, push() blocks instead of growing an
/// unbounded queue, which is the backpressure a real-time backend needs to
/// notice that it is *not* keeping up rather than silently eating memory.
///
/// A "sample" throughout is one time sample across all channels (a
/// channels-tall column). Views passed in and out are channels × n matrices,
/// the same layout every kernel in the repository uses.

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/array2d.hpp"

namespace ddmc::stream {

/// Bounded FIFO of multi-channel samples. Thread-safe for one producer and
/// any number of consumers. Multiple producers are memory-safe but not
/// stream-correct: a blocking push() that waits for space mid-block can
/// interleave its remaining samples with another producer's — and a sample
/// stream has exactly one time order, so give each producer its own ring.
class SampleRing {
 public:
  /// Ring holding up to \p capacity_samples samples of \p channels channels.
  SampleRing(std::size_t channels, std::size_t capacity_samples);

  std::size_t channels() const { return buf_.rows(); }
  std::size_t capacity() const { return buf_.cols(); }
  /// Samples currently buffered (moment-in-time, for monitoring).
  std::size_t size() const;
  bool closed() const;

  /// Producer: append samples.cols() samples, blocking while the ring is
  /// full (backpressure). Samples may be absorbed in several segments as
  /// the consumer frees space. Throws ddmc::invalid_argument if the ring
  /// has been closed or the channel count mismatches.
  void push(ConstView2D<float> samples);

  /// Producer: all-or-nothing non-blocking append. Returns false (and
  /// absorbs nothing) when fewer than samples.cols() slots are free.
  bool try_push(ConstView2D<float> samples);

  /// Producer: no more samples will arrive. Consumers drain the remaining
  /// buffered samples, then pop() returns 0. Idempotent.
  void close();

  /// Consumer: copy up to dst.cols() samples into \p dst, blocking until at
  /// least one sample is available or the ring is closed. Returns the number
  /// of samples written; 0 means closed-and-drained.
  std::size_t pop(View2D<float> dst);

 private:
  // Requires mutex_ held; copies n samples in/out at the ring positions.
  void copy_in(ConstView2D<float> src, std::size_t src_col, std::size_t n);
  void copy_out(View2D<float> dst, std::size_t n);

  Array2D<float> buf_;  // channels × capacity, circular over columns
  std::size_t head_ = 0;   // oldest buffered sample's column
  std::size_t count_ = 0;  // buffered samples
  bool closed_ = false;
  mutable std::mutex mutex_;
  std::condition_variable cv_space_;  // signalled when samples are popped
  std::condition_variable cv_data_;   // signalled when samples are pushed
};

}  // namespace ddmc::stream
