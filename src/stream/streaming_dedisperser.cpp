#include "stream/streaming_dedisperser.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/expect.hpp"
#include "engine/registry.hpp"
#include "resilience/error.hpp"
#include "resilience/fault_injection.hpp"
#include "telemetry/tracing.hpp"

namespace ddmc::stream {

namespace {

/// Config for flush-time partial chunks, whose length is arbitrary and
/// need not divide the tuned tile. The empty config means "the engine's
/// defaults", which every engine accepts on every plan shape (the tiled
/// engines run 1×1 tiles; subband re-adapts its split), and the
/// bitwise-exact engines stay identical across configs, so only the final
/// (typically short) chunk pays the untuned shape.
engine::EngineConfig partial_chunk_config() { return engine::EngineConfig{}; }

/// The one place StreamingOptions maps onto engine-factory options: every
/// consumer site (session engine, sharded executors, per-chunk multi-beam)
/// goes through here, so a new EngineOptions field is wired once, not at
/// each site — missing one silently computes with defaults.
engine::EngineOptions engine_factory_options(const StreamingOptions& options) {
  engine::EngineOptions engine_options;
  engine_options.cpu = options.cpu;
  engine_options.subband = options.subband;
  return engine_options;
}

/// Resolve the session's engine and gate on its streaming capability; the
/// chunker widens its carried overlap by the engine's input_padding.
std::shared_ptr<const engine::DedispEngine> streaming_engine(
    const StreamingOptions& options) {
  std::shared_ptr<const engine::DedispEngine> engine =
      engine::make_engine(options.engine, engine_factory_options(options));
  DDMC_REQUIRE(engine->capabilities().supports_streaming,
               "engine '" + options.engine +
                   "' cannot run a streaming session: its capability "
                   "supports_streaming is false");
  return engine;
}

/// Carried-overlap width of a supervised session: when the watchdog can
/// degrade, the chunker must already carry enough real samples for the
/// *fallback* engine too — its input_padding may exceed the session
/// engine's (subband reads past in_samples), and a mid-session switch
/// cannot widen windows retroactively.
std::size_t session_input_padding(const StreamingOptions& options,
                                  const engine::DedispEngine& engine) {
  std::size_t padding = engine.capabilities().input_padding;
  if (!options.supervision.enabled || options.supervision.degrade_after == 0) {
    return padding;
  }
  const std::string target = resilience::select_degrade_engine(
      options.engine, options.supervision);
  if (target.empty()) return padding;
  const std::shared_ptr<const engine::DedispEngine> fallback =
      engine::make_engine(target, engine_factory_options(options));
  return std::max(padding, fallback->capabilities().input_padding);
}

/// A legacy KernelConfig is a tiled-engine parameterization; when the
/// session runs another engine, only the axes that engine declares carry
/// over (pre-EngineConfig sessions ignored the foreign config entirely) —
/// the tiled engines keep all six axes and stay strictly validated.
engine::EngineConfig legacy_config(const dedisp::Plan& plan,
                                   const dedisp::KernelConfig& config,
                                   const StreamingOptions& options) {
  return engine::restrict_to_axes(
      engine::encode_kernel_config(config),
      streaming_engine(options)->config_axes(plan));
}

}  // namespace

StreamingDedisperser::StreamingDedisperser(dedisp::Plan chunk_plan,
                                           engine::EngineConfig config,
                                           Sink sink,
                                           StreamingOptions options)
    : plan_(std::move(chunk_plan)),
      config_(std::move(config)),
      sink_(std::move(sink)),
      options_(options),
      engine_(streaming_engine(options_)),
      chunker_(plan_, session_input_padding(options_, *engine_)),
      job_input_(plan_.channels(),
                 plan_.in_samples() + session_input_padding(options_, *engine_)),
      out_full_(plan_.dms(), plan_.out_samples()) {
  engine_->validate_config(plan_, config_);
  if (options_.shard_workers >= 2) {
    pipeline::ShardedOptions sharded;
    sharded.workers = options_.shard_workers;
    sharded.engine = options_.engine;
    sharded.engine_options = engine_factory_options(options_);
    sharded.supervision = options_.shard_supervision;
    sharded_ = std::make_unique<pipeline::ShardedDedisperser>(
        plan_, config_, std::move(sharded));
  }
  health_.active_engine = options_.engine;
  auto& registry = telemetry::MetricsRegistry::instance();
  const telemetry::Labels session = {{"session", tracker_.session()}};
  retries_metric_ = registry.counter("ddmc.stream.retries_total", session);
  chunks_retried_metric_ =
      registry.counter("ddmc.stream.chunks_retried_total", session);
  chunks_skipped_metric_ =
      registry.counter("ddmc.stream.chunks_skipped_total", session);
  overruns_metric_ =
      registry.counter("ddmc.stream.deadline_overruns_total", session);
  degradations_metric_ =
      registry.counter("ddmc.stream.degradations_total", session);
  if (options_.supervision.enabled && options_.supervision.degrade_after > 0) {
    degrade_engine_id_ = resilience::select_degrade_engine(
        options_.engine, options_.supervision);
    if (!degrade_engine_id_.empty()) {
      degrade_engine_ = engine::make_engine(degrade_engine_id_,
                                            engine_factory_options(options_));
    }
  }
  if (options_.async) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

StreamingDedisperser::StreamingDedisperser(dedisp::Plan chunk_plan,
                                           dedisp::KernelConfig config,
                                           Sink sink,
                                           StreamingOptions options)
    // The plan and options are passed by copy, not moved: the delegated
    // arguments are unsequenced and legacy_config reads both.
    : StreamingDedisperser(chunk_plan,
                           legacy_config(chunk_plan, config, options),
                           std::move(sink), options) {}

StreamingDedisperser::TunedPlan StreamingDedisperser::resolve_tuning(
    dedisp::Plan chunk_plan, tuner::TuningCache& cache,
    StreamingOptions options, tuner::GuidedTuningOptions tuning) {
  if (tuning.engines.empty()) tuning.engines = {options.engine};
  tuning.engine_options = engine_factory_options(options);
  tuning.host.stage_rows = options.cpu.stage_rows;
  tuning.host.vectorize = options.cpu.vectorize;
  tuning.host.threads = options.cpu.threads;
  tuner::GuidedTuningOutcome outcome =
      tuner::tune_guided(chunk_plan, cache, tuning);
  // Adopt the winner *before* the session is built: the delegated
  // constructor gates the streaming capability and sizes the chunker's
  // carried overlap from options.engine, so a winner with a larger
  // input_padding gets a widened window instead of zero padding.
  options.engine = outcome.engine_id;
  return TunedPlan{std::move(chunk_plan), std::move(options),
                   std::move(outcome)};
}

StreamingDedisperser::StreamingDedisperser(dedisp::Plan chunk_plan,
                                           tuner::TuningCache& cache,
                                           Sink sink,
                                           StreamingOptions options,
                                           tuner::GuidedTuningOptions tuning)
    : StreamingDedisperser(resolve_tuning(std::move(chunk_plan), cache,
                                          std::move(options),
                                          std::move(tuning)),
                           std::move(sink)) {}

StreamingDedisperser::StreamingDedisperser(TunedPlan tuned, Sink sink)
    : StreamingDedisperser(std::move(tuned.plan), tuned.outcome.config,
                           std::move(sink), std::move(tuned.options)) {
  tuning_outcome_ = std::move(tuned.outcome);
}

StreamingDedisperser::~StreamingDedisperser() {
  try {
    close();
  } catch (...) {
    // close() rethrows sink/kernel failures; a destructor cannot. Callers
    // that care about errors close() explicitly.
  }
}

void StreamingDedisperser::rethrow_pending_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_) std::rethrow_exception(error_);
}

void StreamingDedisperser::push(ConstView2D<float> samples) {
  DDMC_REQUIRE(samples.rows() == channels(),
               "sample block rows != plan channels");
  DDMC_REQUIRE(!closed_, "push into a closed streaming session");
  rethrow_pending_error();
  std::size_t offset = 0;
  while (offset < samples.cols()) {
    // Zero-copy fast path: dedisperse straight from the caller's block
    // whenever it contains the whole current window — the dominant case
    // when a receiver hands over large buffers, and it keeps the
    // memory-bound kernel free of assembly traffic. Any assembled window
    // prefix is, by construction, a copy of the last filled() samples fed,
    // i.e. block columns [offset − filled, offset), so the window starts
    // filled() columns back in the block; skip_chunk() drops the duplicate
    // prefix. The borrowed window is only read before submit() returns
    // (sync: the kernel runs inline; async: the handoff copies it).
    const std::size_t filled = chunker_.filled();
    const std::size_t window_cols = chunker_.window_samples();
    if (filled <= offset &&
        samples.cols() - offset >= window_cols - filled) {
      const std::size_t start = offset - filled;
      const ConstView2D<float> window(&samples(0, start), channels(),
                                      window_cols, samples.pitch());
      submit(window, chunker_.chunk_out());
      chunker_.skip_chunk();
      offset = start + chunker_.chunk_out();
      continue;
    }
    offset += chunker_.feed(samples, offset);
    if (chunker_.ready()) {
      submit(chunker_.chunk_input(), chunker_.chunk_out());
      chunker_.advance();
    }
  }
}

void StreamingDedisperser::consume(SampleRing& ring) {
  DDMC_REQUIRE(ring.channels() == channels(),
               "ring channels != plan channels");
  Array2D<float> transfer(channels(),
                          std::min<std::size_t>(ring.capacity(), 4096));
  for (;;) {
    const std::size_t n = ring.pop(transfer.view());
    if (n == 0) break;  // closed and drained
    try {
      push(ConstView2D<float>(transfer.cview().data(), channels(), n,
                              transfer.pitch()));
    } catch (...) {
      // A dead consumer must never leave producers blocked against the
      // ring's backpressure: poison it so their push() calls abort with
      // the session's failure instead of deadlocking.
      ring.fail("streaming session failed: " +
                resilience::describe(std::current_exception()));
      throw;
    }
  }
}

void StreamingDedisperser::submit(ConstView2D<float> window,
                                  std::size_t out_samples) {
  Job job;
  job.index = chunker_.chunk_index();
  job.first_sample = chunker_.first_out_sample();
  job.out_samples = out_samples;
  job.in_cols = window.cols();
  job.assembled_at = session_clock_.seconds();

  if (!options_.async) {
    run_job(job, window);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [&] { return !job_pending_; });
  if (error_) std::rethrow_exception(error_);
  for (std::size_t ch = 0; ch < window.rows(); ++ch) {
    std::memcpy(&job_input_(ch, 0), &window(ch, 0),
                window.cols() * sizeof(float));
  }
  job_ = job;
  job_pending_ = true;
  cv_job_.notify_one();
}

void StreamingDedisperser::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [&] { return job_pending_ || stop_; });
      if (!job_pending_) return;  // stop requested, queue drained
      job = job_;
    }
    const ConstView2D<float> input(job_input_.cview().data(), channels(),
                                   job.in_cols, job_input_.pitch());
    try {
      run_job(job, input);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_pending_ = false;
      cv_idle_.notify_all();
    }
  }
}

void StreamingDedisperser::run_job(const Job& job, ConstView2D<float> input) {
  const resilience::StreamPolicy& policy = options_.supervision;
  const bool full = job.out_samples == plan_.out_samples();
  const dedisp::Plan plan =
      full ? plan_ : plan_.with_chunk(job.out_samples);
  const engine::EngineConfig config =
      full ? config_ : partial_chunk_config();
  const double data_seconds = static_cast<double>(job.out_samples) /
                              plan_.observation().sampling_rate();

  // Full chunks reuse the session's output buffer (a streaming hot path
  // should not allocate megabytes per chunk); only the final partial
  // flush, whose shape differs, allocates its own.
  Array2D<float> partial_out;
  if (!full) partial_out = Array2D<float>(plan.dms(), plan.out_samples());
  const View2D<float> out = full ? out_full_.view() : partial_out.view();

  telemetry::TraceSpan chunk_span("stream.chunk");
  chunk_span.arg("chunk", job.index).arg("out_samples", job.out_samples);

  // Watchdog rung 1 — bounded retry of transient chunk failures. A fresh
  // attempt rewrites the whole output buffer, so a half-written failed
  // attempt never leaks into the emitted chunk. compute time keeps
  // covering the failed attempts: the deadline judges the chunk's real
  // wall cost, which is what the ring feels.
  Stopwatch compute;
  std::size_t chunk_retries = 0;
  bool single_run = false;
  engine::EngineRun run;
  for (;;) {
    try {
      DDMC_FAILPOINT_CTX("stream.chunk", job.index);
      if (full && sharded_ && !degraded_) {
        sharded_->dedisperse(input, out);
        single_run = false;
      } else {
        const engine::DedispEngine& engine =
            degraded_ ? *degrade_engine_ : *engine_;
        run = engine.execute(plan, config, input, out);
        single_run = true;
      }
      break;
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      const bool transient = resilience::classify_supervised(err) ==
                             resilience::ErrorClass::kTransient;
      if (policy.enabled && transient &&
          chunk_retries < policy.max_chunk_retries) {
        ++chunk_retries;
        continue;
      }
      if (chunk_retries > 0) {
        retries_metric_->add(static_cast<double>(chunk_retries));
        chunks_retried_metric_->increment();
      }
      // Rung 2 — skip: only transient failures may be dropped; a config
      // or data error would fail every later chunk the same way, so it
      // latches the session error exactly as an unsupervised run would.
      if (policy.enabled && policy.skip_failed_chunks && transient) {
        skip_chunk_with_gap(job, resilience::describe(err));
        return;
      }
      std::rethrow_exception(err);
    }
  }

  StreamChunk chunk;
  chunk.index = job.index;
  chunk.first_sample = job.first_sample;
  chunk.out_samples = job.out_samples;
  chunk.output = out;
  if (options_.detect) {
    chunk.detection = sky::detect_best_dm(out);
  }
  chunk.timing.compute_seconds = compute.seconds();
  chunk.timing.data_seconds = data_seconds;
  chunk.timing.latency_seconds = session_clock_.seconds() - job.assembled_at;
  if (sink_) {
    telemetry::TraceSpan sink_span("stream.sink");
    sink_span.arg("chunk", job.index);
    sink_(chunk);
  }
  if (chunk_retries > 0) {
    retries_metric_->add(static_cast<double>(chunk_retries));
    chunks_retried_metric_->increment();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  tracker_.record(chunk.timing);
  ++emitted_;
  if (single_run) traffic_.add(run, plan);
  // Rung 3 pressure — the deadline is the real-time-margin criterion per
  // chunk: factor × data seconds of compute budget. An overrun still
  // delivered (late science beats no science) but pushes the session
  // toward the cheaper engine; an on-time chunk resets the streak.
  if (policy.enabled && policy.deadline_factor > 0.0 &&
      chunk.timing.compute_seconds > policy.deadline_factor * data_seconds) {
    overruns_metric_->increment();
    telemetry::Tracer::instance().record_instant(
        "stream.deadline", telemetry::Tracer::now_ns());
    degrade_pressure(lock);
  } else {
    pressure_streak_ = 0;
  }
}

void StreamingDedisperser::skip_chunk_with_gap(const Job& job,
                                               const std::string& reason) {
  const double data_seconds = static_cast<double>(job.out_samples) /
                              plan_.observation().sampling_rate();
  resilience::ChunkGap gap;
  gap.index = job.index;
  gap.first_sample = job.first_sample;
  gap.out_samples = job.out_samples;
  gap.reason = reason;
  chunks_skipped_metric_->increment();
  telemetry::Tracer::instance().record_instant("stream.gap",
                                               telemetry::Tracer::now_ns());
  std::unique_lock<std::mutex> lock(mutex_);
  tracker_.record_gap(data_seconds);
  health_.gaps.push_back(std::move(gap));
  degrade_pressure(lock);
}

void StreamingDedisperser::degrade_pressure(std::unique_lock<std::mutex>&) {
  ++pressure_streak_;
  if (degraded_ || !degrade_engine_ ||
      options_.supervision.degrade_after == 0 ||
      pressure_streak_ < options_.supervision.degrade_after) {
    return;
  }
  // The switch is one flag plus bookkeeping: the target engine was built
  // at construction and the chunker already carries its padding.
  degraded_ = true;
  pressure_streak_ = 0;
  degradations_metric_->increment();
  telemetry::Tracer::instance().record_instant("stream.degrade",
                                               telemetry::Tracer::now_ns());
  health_.degraded = true;
  health_.active_engine = degrade_engine_id_;
}

resilience::StreamHealth StreamingDedisperser::health() const {
  // gaps / engine identity under the session mutex; numeric counters from
  // the registry metrics, so health(), a Prometheus scrape and
  // snapshot_json() report the same numbers.
  resilience::StreamHealth h;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    h = health_;
    h.chunks_emitted = emitted_;
  }
  h.retries = static_cast<std::size_t>(retries_metric_->value());
  h.chunks_retried =
      static_cast<std::size_t>(chunks_retried_metric_->value());
  h.chunks_skipped =
      static_cast<std::size_t>(chunks_skipped_metric_->value());
  h.deadline_overruns = static_cast<std::size_t>(overruns_metric_->value());
  h.degradations = static_cast<std::size_t>(degradations_metric_->value());
  h.gap_data_seconds = tracker_.report().gap_data_seconds;
  return h;
}

engine::SessionTraffic StreamingDedisperser::telemetry() const {
  std::lock_guard<std::mutex> lock(mutex_);
  engine::SessionTraffic total = traffic_;
  if (sharded_) total.merge(sharded_->telemetry());
  return total;
}

void StreamingDedisperser::close() {
  if (!closed_) {
    closed_ = true;
    // The flush may rethrow an earlier failure; the worker must still be
    // stopped and joined before any exception leaves, or a joinable thread
    // would be destroyed.
    std::exception_ptr flush_error;
    try {
      if (chunker_.pending_out() > 0) {
        submit(chunker_.partial_input(), chunker_.pending_out());
      }
    } catch (...) {
      flush_error = std::current_exception();
    }
    if (options_.async) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        cv_job_.notify_all();
      }
      if (worker_.joinable()) worker_.join();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_ && flush_error) error_ = flush_error;
  }
  rethrow_pending_error();
}

std::size_t StreamingDedisperser::chunks_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

LatencyReport StreamingDedisperser::latency() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tracker_.report();
}

// ----------------------------------------------------------- multi-beam --

MultiBeamStreamingDedisperser::MultiBeamStreamingDedisperser(
    dedisp::Plan chunk_plan, engine::EngineConfig config, std::size_t beams,
    Sink sink, StreamingOptions options)
    : plan_(std::move(chunk_plan)),
      config_(std::move(config)),
      sink_(std::move(sink)),
      options_(options),
      engine_(streaming_engine(options_)) {
  DDMC_REQUIRE(beams > 0, "need at least one beam");
  engine_->validate_config(plan_, config_);
  if (options_.shard_workers >= 2) {
    pipeline::ShardedOptions sharded;
    sharded.workers = options_.shard_workers;
    sharded.engine = options_.engine;
    sharded.engine_options = engine_factory_options(options_);
    sharded.supervision = options_.shard_supervision;
    sharded_ = std::make_unique<pipeline::ShardedDedisperser>(
        plan_, config_, std::move(sharded));
  }
  const std::size_t padding = engine_->capabilities().input_padding;
  chunkers_.reserve(beams);
  for (std::size_t b = 0; b < beams; ++b) {
    chunkers_.emplace_back(plan_, padding);
  }
}

MultiBeamStreamingDedisperser::MultiBeamStreamingDedisperser(
    dedisp::Plan chunk_plan, dedisp::KernelConfig config, std::size_t beams,
    Sink sink, StreamingOptions options)
    // Plan and options copied, not moved: the delegated arguments are
    // unsequenced and legacy_config reads both.
    : MultiBeamStreamingDedisperser(chunk_plan,
                                    legacy_config(chunk_plan, config, options),
                                    beams, std::move(sink), options) {}

void MultiBeamStreamingDedisperser::push(
    const std::vector<ConstView2D<float>>& beam_samples) {
  DDMC_REQUIRE(beam_samples.size() == beams(),
               "feed must cover every beam of the session");
  DDMC_REQUIRE(!closed_, "push into a closed streaming session");
  const std::size_t n = beam_samples[0].cols();
  for (const auto& s : beam_samples) {
    DDMC_REQUIRE(s.cols() == n,
                 "beams must be fed the same number of samples");
  }
  std::size_t offset = 0;
  while (offset < n) {
    const std::size_t absorbed = chunkers_[0].feed(beam_samples[0], offset);
    for (std::size_t b = 1; b < beams(); ++b) {
      const std::size_t a = chunkers_[b].feed(beam_samples[b], offset);
      DDMC_ENSURE(a == absorbed, "beam chunkers fell out of lockstep");
    }
    offset += absorbed;
    if (chunkers_[0].ready()) {
      std::vector<ConstView2D<float>> windows;
      windows.reserve(beams());
      for (const auto& c : chunkers_) windows.push_back(c.chunk_input());
      run_chunk(plan_, config_, windows, chunkers_[0].chunk_index(),
                chunkers_[0].first_out_sample());
      for (auto& c : chunkers_) c.advance();
    }
  }
}

void MultiBeamStreamingDedisperser::close() {
  if (closed_) return;
  closed_ = true;
  const std::size_t pending = chunkers_[0].pending_out();
  if (pending == 0) return;
  std::vector<ConstView2D<float>> windows;
  windows.reserve(beams());
  for (const auto& c : chunkers_) windows.push_back(c.partial_input());
  run_chunk(plan_.with_chunk(pending), partial_chunk_config(), windows,
            chunkers_[0].chunk_index(), chunkers_[0].first_out_sample());
}

engine::SessionTraffic MultiBeamStreamingDedisperser::telemetry() const {
  return sharded_ ? sharded_->telemetry() : engine::SessionTraffic{};
}

void MultiBeamStreamingDedisperser::run_chunk(
    const dedisp::Plan& plan, const engine::EngineConfig& config,
    const std::vector<ConstView2D<float>>& windows, std::size_t index,
    std::size_t first_sample) {
  const double assembled_at = session_clock_.seconds();
  // Full chunks reuse the session's sharded executor; the final partial
  // chunk (different plan shape) takes the beam-parallel path, whose
  // output is bitwise identical anyway.
  const bool use_sharded =
      sharded_ && plan.out_samples() == plan_.out_samples();
  Stopwatch compute;
  std::vector<Array2D<float>> outputs;
  if (use_sharded) {
    outputs = sharded_->dedisperse_batch(windows);
  } else {
    // The session's full factory options ride along, so e.g. a configured
    // subband split reaches the per-beam engines, not just the gate.
    pipeline::MultiBeamDedisperser mb(plan, config, options_.engine,
                                      engine_factory_options(options_));
    outputs = mb.dedisperse(windows, options_.cpu.threads);
  }

  MultiBeamStreamChunk chunk;
  chunk.index = index;
  chunk.first_sample = first_sample;
  chunk.out_samples = plan.out_samples();
  chunk.outputs = &outputs;
  if (options_.detect) {
    // Same scan and tie-break as MultiBeamDedisperser::search: strictly
    // greater S/N wins, so ties go to the lowest beam index.
    pipeline::MultiBeamDedisperser::BeamCandidate best;
    best.detection.best_snr = -1.0;
    for (std::size_t b = 0; b < outputs.size(); ++b) {
      const sky::DetectionResult res = sky::detect_best_dm(outputs[b].cview());
      if (res.best_snr > best.detection.best_snr) {
        best.beam = b;
        best.detection = res;
      }
    }
    chunk.candidate = best;
  }
  chunk.timing.compute_seconds = compute.seconds();
  chunk.timing.data_seconds = static_cast<double>(plan.out_samples()) /
                              plan.observation().sampling_rate();
  chunk.timing.latency_seconds = session_clock_.seconds() - assembled_at;
  if (sink_) sink_(chunk);
  tracker_.record(chunk.timing);
  ++emitted_;
}

}  // namespace ddmc::stream
