#include "stream/ring_buffer.hpp"

#include <algorithm>
#include <cstring>

#include "common/expect.hpp"
#include "resilience/error.hpp"
#include "resilience/fault_injection.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace ddmc::stream {

namespace {

/// Account one completed blocking wait on the ring. Only ever called from
/// a path that actually slept — the uncontended push/pop never touches the
/// registry, so ring throughput is unchanged when there is no backpressure.
void note_block(bool push, std::uint64_t start_ns, std::uint64_t end_ns) {
  const double seconds =
      static_cast<double>(end_ns - start_ns) * 1e-9;
  auto& registry = telemetry::MetricsRegistry::instance();
  if (push) {
    registry.counter("ddmc.ring.push_blocks_total")->increment();
    registry.counter("ddmc.ring.push_block_seconds_total")->add(seconds);
  } else {
    registry.counter("ddmc.ring.pop_blocks_total")->increment();
    registry.counter("ddmc.ring.pop_block_seconds_total")->add(seconds);
  }
  telemetry::Tracer::instance().record_complete(
      push ? "ring.push.wait" : "ring.pop.wait", start_ns,
      end_ns - start_ns);
}

}  // namespace

SampleRing::SampleRing(std::size_t channels, std::size_t capacity_samples)
    : buf_(channels, capacity_samples) {
  DDMC_REQUIRE(channels > 0, "need at least one channel");
  DDMC_REQUIRE(capacity_samples > 0, "need a non-zero ring capacity");
}

std::size_t SampleRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

bool SampleRing::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool SampleRing::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

void SampleRing::fail(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) return;  // first reason wins
  failed_ = true;
  fail_reason_ = reason.empty() ? "unspecified" : reason;
  cv_data_.notify_all();
  cv_space_.notify_all();
}

void SampleRing::throw_if_failed() const {
  if (failed_) {
    throw resilience::TransientError("SampleRing aborted: " + fail_reason_);
  }
}

void SampleRing::copy_in(ConstView2D<float> src, std::size_t src_col,
                         std::size_t n) {
  const std::size_t cap = buf_.cols();
  const std::size_t tail = (head_ + count_) % cap;
  const std::size_t first = std::min(n, cap - tail);
  for (std::size_t ch = 0; ch < buf_.rows(); ++ch) {
    std::memcpy(&buf_(ch, tail), &src(ch, src_col), first * sizeof(float));
    if (n > first) {
      std::memcpy(&buf_(ch, 0), &src(ch, src_col + first),
                  (n - first) * sizeof(float));
    }
  }
  count_ += n;
}

void SampleRing::copy_out(View2D<float> dst, std::size_t n) {
  const std::size_t cap = buf_.cols();
  const std::size_t first = std::min(n, cap - head_);
  for (std::size_t ch = 0; ch < buf_.rows(); ++ch) {
    std::memcpy(&dst(ch, 0), &buf_(ch, head_), first * sizeof(float));
    if (n > first) {
      std::memcpy(&dst(ch, first), &buf_(ch, 0),
                  (n - first) * sizeof(float));
    }
  }
  head_ = (head_ + n) % cap;
  count_ -= n;
}

void SampleRing::push(ConstView2D<float> samples) {
  DDMC_REQUIRE(samples.rows() == channels(),
               "sample block rows != ring channels");
  DDMC_FAILPOINT("ring.push");
  std::size_t done = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (done < samples.cols()) {
    const auto have_space = [&] {
      return count_ < capacity() || closed_ || failed_;
    };
    if (!have_space()) {  // producer blocked: the ring feels backpressure
      const std::uint64_t start = telemetry::Tracer::now_ns();
      cv_space_.wait(lock, have_space);
      note_block(true, start, telemetry::Tracer::now_ns());
    }
    throw_if_failed();
    DDMC_REQUIRE(!closed_, "push into a closed SampleRing");
    const std::size_t n =
        std::min(samples.cols() - done, capacity() - count_);
    copy_in(samples, done, n);
    done += n;
    cv_data_.notify_all();
  }
}

bool SampleRing::try_push(ConstView2D<float> samples) {
  DDMC_REQUIRE(samples.rows() == channels(),
               "sample block rows != ring channels");
  DDMC_FAILPOINT("ring.push");
  std::lock_guard<std::mutex> lock(mutex_);
  throw_if_failed();
  DDMC_REQUIRE(!closed_, "push into a closed SampleRing");
  if (capacity() - count_ < samples.cols()) return false;
  copy_in(samples, 0, samples.cols());
  cv_data_.notify_all();
  return true;
}

void SampleRing::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  cv_data_.notify_all();
  cv_space_.notify_all();
}

std::size_t SampleRing::pop(View2D<float> dst) {
  DDMC_REQUIRE(dst.rows() == channels(), "destination rows != ring channels");
  DDMC_REQUIRE(dst.cols() > 0, "destination holds no samples");
  DDMC_FAILPOINT("ring.pop");
  std::unique_lock<std::mutex> lock(mutex_);
  const auto have_data = [&] { return count_ > 0 || closed_ || failed_; };
  if (!have_data()) {  // consumer starved: ingest is behind compute
    const std::uint64_t start = telemetry::Tracer::now_ns();
    cv_data_.wait(lock, have_data);
    note_block(false, start, telemetry::Tracer::now_ns());
  }
  throw_if_failed();
  if (count_ == 0) return 0;  // closed and drained
  const std::size_t n = std::min(dst.cols(), count_);
  copy_out(dst, n);
  cv_space_.notify_all();
  return n;
}

}  // namespace ddmc::stream
