/// Cost of observing: the telemetry subsystem's overhead at every price
/// point that matters.
///
/// The metrics/tracing layer rides inside the hot seams (engine execute,
/// shard attempts, every streaming chunk), so it is only shippable if (a) a
/// *disabled* span costs nanoseconds — the same discipline as the disarmed
/// failpoint it sits next to, (b) an enabled span stays far below a chunk's
/// compute time, (c) exports are cheap enough to run from a scrape handler,
/// and (d) a real streaming session pays no measurable margin for running
/// with tracing on. This bench measures all four.
///
///   ./bench_telemetry [--span-iters 2000000] [--chunks 64] [--json out.json]

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "common/array2d.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dedisp/kernel_config.hpp"
#include "stream/streaming_dedisperser.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace {

using namespace ddmc;

/// One timed streaming session; returns wall seconds for the whole stream.
double run_stream(const dedisp::Plan& chunked, const Array2D<float>& input,
                  std::size_t total_out) {
  std::size_t emitted = 0;
  stream::StreamingOptions opts;
  opts.cpu.threads = 1;
  stream::StreamingDedisperser session(
      chunked, dedisp::KernelConfig{1, 1, 1, 1},
      [&](const stream::StreamChunk& chunk) { emitted += chunk.out_samples; },
      opts);
  Stopwatch clock;
  session.push(input.cview());
  session.close();
  const double seconds = clock.seconds();
  DDMC_REQUIRE(emitted == total_out, "stream emitted the wrong sample count");
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_telemetry",
          "overhead of the metrics registry, tracing spans and exporters");
  cli.add_option("span-iters", "span/counter micro-bench iterations",
                 "2000000");
  cli.add_option("chunks", "streaming chunks for the end-to-end overhead",
                 "64");
  cli.add_option("json", "write machine-readable results to this path", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto span_iters =
      static_cast<std::size_t>(cli.get_int("span-iters"));
  const auto chunks = static_cast<std::size_t>(cli.get_int("chunks"));
  DDMC_REQUIRE(span_iters > 0 && chunks > 0,
               "--span-iters and --chunks must be positive");

  auto& tracer = telemetry::Tracer::instance();
  auto& registry = telemetry::MetricsRegistry::instance();

  // ---- disabled span: the price every clean run pays -------------------
  tracer.set_enabled(false);
  double disabled_ns = 0.0;
  {
    for (std::size_t i = 0; i < 1000; ++i) {
      telemetry::TraceSpan span("bench.span");
    }
    Stopwatch clock;
    for (std::size_t i = 0; i < span_iters; ++i) {
      telemetry::TraceSpan span("bench.span");
    }
    disabled_ns = clock.seconds() * 1e9 / static_cast<double>(span_iters);
  }

  // ---- enabled span: record into the preallocated slot vector ----------
  tracer.set_enabled(true);
  tracer.clear();
  double enabled_ns = 0.0;
  {
    Stopwatch clock;
    for (std::size_t i = 0; i < span_iters; ++i) {
      telemetry::TraceSpan span("bench.span");
    }
    enabled_ns = clock.seconds() * 1e9 / static_cast<double>(span_iters);
  }
  const std::size_t recorded = tracer.events().size();
  const std::size_t dropped = tracer.dropped();
  tracer.set_enabled(false);

  // ---- counter add: the per-metric price of every instrumented seam ----
  double counter_ns = 0.0;
  {
    auto counter = registry.counter("ddmc.bench.spin_total");
    Stopwatch clock;
    for (std::size_t i = 0; i < span_iters; ++i) counter->increment();
    counter_ns = clock.seconds() * 1e9 / static_cast<double>(span_iters);
  }

  // ---- export cost: scrape-handler latency ------------------------------
  // A populated registry (one labeled family per instrumented seam order of
  // magnitude) plus the trace buffer as filled by the enabled-span loop.
  for (std::size_t i = 0; i < 64; ++i) {
    registry
        .counter("ddmc.bench.family_total", {{"k", std::to_string(i)}})
        ->add(static_cast<double>(i));
  }
  auto hist = registry.histogram("ddmc.bench.latency_seconds");
  for (std::size_t i = 0; i < 4096; ++i) {
    hist->record(1e-3 * static_cast<double>(i % 97));
  }
  double prometheus_us = 0.0;
  double json_us = 0.0;
  double chrome_us = 0.0;
  std::size_t prometheus_bytes = 0;
  std::size_t chrome_bytes = 0;
  {
    constexpr std::size_t kReps = 50;
    Stopwatch clock;
    for (std::size_t i = 0; i < kReps; ++i) {
      prometheus_bytes = telemetry::export_prometheus().size();
    }
    prometheus_us = clock.seconds() * 1e6 / kReps;
    clock.reset();
    for (std::size_t i = 0; i < kReps; ++i) {
      telemetry::snapshot_json().dump();
    }
    json_us = clock.seconds() * 1e6 / kReps;
    clock.reset();
    for (std::size_t i = 0; i < kReps; ++i) {
      chrome_bytes = telemetry::export_chrome_trace().size();
    }
    chrome_us = clock.seconds() * 1e6 / kReps;
  }
  tracer.clear();

  // ---- end-to-end: a streaming session, tracing off vs on ---------------
  const sky::Observation obs = sky::apertif();
  const std::size_t chunk_samples = 256;
  const std::size_t total_out = chunk_samples * chunks;
  const dedisp::Plan batch =
      dedisp::Plan::with_output_samples(obs, 32, total_out);
  const dedisp::Plan chunked = batch.with_chunk(chunk_samples);
  Array2D<float> input(batch.channels(), batch.in_samples());
  Rng rng(7);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }

  // Alternate off/on runs and keep each mode's best time: the contrast is
  // nanoseconds per chunk, so thermal drift between two single runs would
  // otherwise dominate the signal.
  run_stream(chunked, input, total_out);  // warmup
  double stream_off = 0.0;
  double stream_on = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    tracer.set_enabled(false);
    const double off = run_stream(chunked, input, total_out);
    stream_off = rep == 0 ? off : std::min(stream_off, off);
    tracer.set_enabled(true);
    tracer.clear();
    const double on = run_stream(chunked, input, total_out);
    stream_on = rep == 0 ? on : std::min(stream_on, on);
  }
  tracer.set_enabled(false);
  const double stream_overhead = stream_on / stream_off - 1.0;

  std::cout << "== telemetry overhead, simd " << simd::backend_name()
            << " ==\n\n";
  TextTable table({"measurement", "cost"});
  table.add_row({"disabled span", TextTable::num(disabled_ns, 1) + " ns"});
  table.add_row({"enabled span", TextTable::num(enabled_ns, 1) + " ns"});
  table.add_row({"counter add", TextTable::num(counter_ns, 1) + " ns"});
  table.add_row(
      {"prometheus export", TextTable::num(prometheus_us, 1) + " us"});
  table.add_row({"json snapshot", TextTable::num(json_us, 1) + " us"});
  table.add_row({"chrome trace", TextTable::num(chrome_us, 1) + " us"});
  table.add_row({"stream, tracing off",
                 TextTable::num(stream_off * 1e3, 1) + " ms"});
  table.add_row({"stream, tracing on",
                 TextTable::num(stream_on * 1e3, 1) + " ms"});
  table.add_row({"stream overhead",
                 TextTable::num(stream_overhead * 100.0, 1) + " %"});
  table.print(std::cout);
  std::cout << "\n(enabled-span loop recorded " << recorded
            << " events, dropped " << dropped
            << " once the bounded buffer filled — dropping, not blocking,\n"
               " is the contract that keeps tracing safe inside the "
               "pipeline it observes)\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    bench::JsonObject root;
    root.set("bench", "bench_telemetry")
        .set("simd_backend", simd::backend_name())
        .set("span_iters", span_iters)
        .set("disabled_span_ns", disabled_ns)
        .set("enabled_span_ns", enabled_ns)
        .set("counter_add_ns", counter_ns)
        .set("trace_events_recorded", recorded)
        .set("trace_events_dropped", dropped)
        .set("prometheus_export_us", prometheus_us)
        .set("prometheus_export_bytes", prometheus_bytes)
        .set("json_snapshot_us", json_us)
        .set("chrome_trace_us", chrome_us)
        .set("chrome_trace_bytes", chrome_bytes)
        .set_raw("streaming",
                 bench::JsonObject()
                     .set("chunks", chunks)
                     .set("chunk_samples", chunk_samples)
                     .set("seconds_tracing_off", stream_off)
                     .set("seconds_tracing_on", stream_on)
                     .set("overhead", stream_overhead)
                     .dump());
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
