/// DM-sharded executor throughput vs. worker count on this machine.
///
/// The sharded path exists to scale one plan across workers (and, later,
/// devices): the number that matters is how throughput moves as the worker
/// pool grows. For each worker count the bench runs the ShardedDedisperser
/// over the identical input, checks the output is bitwise identical to the
/// single-engine batch path, and reports measured GFLOP/s next to the
/// planner's *modeled* speedup (modeled single-shard seconds / modeled
/// critical path) — on a machine with fewer cores than workers the measured
/// curve flattens at the core count while the modeled curve shows what the
/// balanced partition sustains when every worker owns real hardware, so
/// both are recorded.
///
///   ./bench_shard_executor [--dms 128] [--out-samples 10000] [--reps 3]
///                          [--workers 1,2,4,8] [--json out.json]

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/array2d.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "pipeline/sharding.hpp"
#include "sky/observation.hpp"

namespace {

using namespace ddmc;

std::vector<std::size_t> parse_worker_list(const std::string& text) {
  std::vector<std::size_t> workers;
  std::istringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const long long v = std::stoll(part);
    DDMC_REQUIRE(v > 0, "--workers entries must be positive");
    workers.push_back(static_cast<std::size_t>(v));
  }
  DDMC_REQUIRE(!workers.empty(), "--workers needs at least one count");
  return workers;
}

struct WorkerResult {
  std::size_t workers = 0;
  std::size_t shards = 0;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_one = 0.0;   ///< measured, vs the 1-worker sharded run
  double modeled_speedup = 0.0;  ///< modeled 1-shard cost / critical path
  double modeled_imbalance = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_shard_executor",
          "DM-sharded executor throughput vs worker count");
  cli.add_option("dms", "number of trial DMs", "128");
  cli.add_option("out-samples", "output samples per trial", "10000");
  cli.add_option("reps", "timed repetitions", "3");
  cli.add_option("workers", "comma-separated worker counts", "1,2,4,8");
  cli.add_option("json", "write machine-readable results to this path", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto out_samples =
      static_cast<std::size_t>(cli.get_int("out-samples"));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
  std::vector<std::size_t> worker_counts =
      parse_worker_list(cli.get("workers"));
  // The scaling column normalizes against a real 1-worker run, so one is
  // always measured even when --workers omits it.
  if (std::find(worker_counts.begin(), worker_counts.end(), 1u) ==
      worker_counts.end()) {
    worker_counts.insert(worker_counts.begin(), 1);
  }

  const sky::Observation obs = sky::apertif();
  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(obs, dms, out_samples);
  const double flop = plan.total_flop();

  // The PR-1 host-sweep optimum shape, shrunk by each shard as needed.
  dedisp::KernelConfig config{50, 2, 4, 2, 32, 4};
  if (!config.divides(plan)) config = dedisp::KernelConfig{1, 1, 1, 1, 32, 4};

  Array2D<float> input(plan.channels(), plan.in_samples());
  Rng rng(99);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }

  // Single-engine batch reference (one thread): correctness anchor and the
  // absolute baseline a sharded deployment replaces.
  dedisp::CpuKernelOptions single_cpu;
  single_cpu.threads = 1;
  Array2D<float> expected(plan.dms(), plan.out_samples());
  dedisp::dedisperse_cpu(plan, config, input.cview(), expected.view(),
                         single_cpu);
  double single_seconds = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch clock;
    dedisp::dedisperse_cpu(plan, config, input.cview(), expected.view(),
                           single_cpu);
    single_seconds += clock.seconds();
  }
  single_seconds /= static_cast<double>(reps);
  const double single_gflops = flop / single_seconds * 1e-9;

  const pipeline::DmShardPlanner planner(plan);
  const double modeled_one =
      planner.partition(1).modeled_max_seconds;

  std::vector<WorkerResult> results;
  for (std::size_t workers : worker_counts) {
    WorkerResult res;
    res.workers = workers;

    pipeline::ShardedOptions opts;
    opts.workers = workers;
    const pipeline::ShardedDedisperser sharded(plan, config, opts);
    res.shards = sharded.shard_count();
    res.modeled_speedup =
        modeled_one / sharded.layout().modeled_max_seconds;
    res.modeled_imbalance = sharded.layout().imbalance();

    Array2D<float> out(plan.dms(), plan.out_samples());
    sharded.dedisperse(input.cview(), out.view());  // warmup
    for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
      for (std::size_t t = 0; t < plan.out_samples(); ++t) {
        DDMC_REQUIRE(out(dm, t) == expected(dm, t),
                     "sharded output diverged from the single-engine path");
      }
    }
    double total = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      Stopwatch clock;
      sharded.dedisperse(input.cview(), out.view());
      total += clock.seconds();
    }
    res.seconds = total / static_cast<double>(reps);
    res.gflops = flop / res.seconds * 1e-9;
    results.push_back(res);
  }
  double one_worker_seconds = 0.0;
  for (const WorkerResult& r : results) {
    if (r.workers == 1) one_worker_seconds = r.seconds;
  }
  for (WorkerResult& r : results) {
    r.speedup_vs_one = one_worker_seconds / r.seconds;
  }

  const std::size_t host_cpus =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::cout << "== DM-sharded executor, " << obs.name() << ", " << dms
            << " DMs x " << out_samples << " samples, config "
            << config.to_string() << ", simd " << simd::backend_name()
            << ", host cpus " << host_cpus << " ==\n\n"
            << "single engine (1 thread): " << TextTable::num(single_gflops, 2)
            << " GFLOP/s (" << TextTable::num(single_seconds * 1e3, 1)
            << " ms)\n\n";

  TextTable table({"workers", "shards", "GFLOP/s", "vs 1 worker",
                   "modeled speedup", "modeled imbalance"});
  for (const WorkerResult& r : results) {
    table.add_row({std::to_string(r.workers), std::to_string(r.shards),
                   TextTable::num(r.gflops, 2),
                   TextTable::num(r.speedup_vs_one, 2) + "x",
                   TextTable::num(r.modeled_speedup, 2) + "x",
                   TextTable::num(r.modeled_imbalance, 3)});
  }
  table.print(std::cout);
  std::cout << "\n(modeled speedup = planner critical-path ratio with every "
               "worker on real hardware;\n measured scaling saturates at "
               "the machine's core count)\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    bench::JsonArray arr;
    for (const WorkerResult& r : results) {
      arr.add(bench::JsonObject()
                  .set("workers", r.workers)
                  .set("shards", r.shards)
                  .set("seconds", r.seconds)
                  .set("gflops", r.gflops)
                  .set("speedup_vs_one_worker", r.speedup_vs_one)
                  .set("modeled_speedup", r.modeled_speedup)
                  .set("modeled_imbalance", r.modeled_imbalance));
    }
    bench::JsonObject root;
    root.set("bench", "bench_shard_executor")
        .set("simd_backend", simd::backend_name())
        .set("host_cpus", host_cpus)
        .set("config", config.to_string())
        .set_raw("plan", bench::JsonObject()
                             .set("observation", obs.name())
                             .set("dms", dms)
                             .set("out_samples", out_samples)
                             .set("channels", plan.channels())
                             .set("max_delay", plan.max_delay())
                             .dump())
        .set_raw("single_engine",
                 bench::JsonObject()
                     .set("seconds", single_seconds)
                     .set("gflops", single_gflops)
                     .dump())
        .set_raw("sharded", arr.dump());
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
