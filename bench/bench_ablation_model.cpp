/// Ablation study of the performance model's mechanisms (DESIGN.md §5):
/// for a fixed instance, re-tune with each mechanism switched off and
/// report how the predicted optimum moves. This quantifies which parts of
/// the model carry the paper's findings:
///
///  - no-local-memory: reuse must come from caches (the Phi's situation);
///  - no-reuse: streaming traffic only — the Eq. 2 regime;
///  - perfect-hiding: latency hiding assumed free (hiding_half → 0);
///  - no-overheads: kernel launch and group scheduling cost nothing;
///  - fma-peak: pretend accumulates fuse (instr_per_flop halved) — the
///    §VI argument about the 50%-of-peak claim.

#include <functional>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "sky/observation.hpp"
#include "tuner/tuner.hpp"

namespace {

using namespace ddmc;

struct Ablation {
  std::string name;
  std::function<ocl::DeviceModel(ocl::DeviceModel)> mutate;
};

double tuned_gflops(const ocl::DeviceModel& dev,
                    const ocl::PlanAnalysis& analysis) {
  return tuner::tune(dev, analysis).best.perf.gflops;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_ablation_model",
          "ablations of the device-model mechanisms");
  cli.add_option("dms", "number of trial DMs", "1024");
  cli.add_flag("csv", "emit only CSV output");
  if (!cli.parse(argc, argv)) return 0;
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));

  const std::vector<Ablation> ablations = {
      {"baseline", [](ocl::DeviceModel d) { return d; }},
      {"no-local-memory",
       [](ocl::DeviceModel d) {
         d.has_local_memory = false;
         d.local_mem_per_group_bytes = 0;
         d.local_mem_per_cu_bytes = 0;
         return d;
       }},
      {"no-reuse",
       [](ocl::DeviceModel d) {
         d.has_local_memory = false;
         d.local_mem_per_group_bytes = 0;
         d.local_mem_per_cu_bytes = 0;
         d.cache_per_cu_bytes = 0;
         return d;
       }},
      {"perfect-hiding",
       [](ocl::DeviceModel d) {
         d.hiding_half = 0.0;
         return d;
       }},
      {"no-overheads",
       [](ocl::DeviceModel d) {
         d.launch_overhead_us = 0.0;
         d.group_overhead_cycles = 0.0;
         return d;
       }},
      {"fma-peak",
       [](ocl::DeviceModel d) {
         d.instr_per_flop /= 2.0;
         return d;
       }},
  };

  for (const sky::Observation& obs : {sky::apertif(), sky::lofar()}) {
    const ocl::PlanAnalysis analysis((dedisp::Plan(obs, dms)));
    std::vector<std::string> header = {"ablation"};
    for (const auto& dev : ocl::table1_devices()) header.push_back(dev.name);
    TextTable table(header);
    for (const Ablation& ab : ablations) {
      std::vector<std::string> row = {ab.name};
      for (const auto& dev : ocl::table1_devices()) {
        row.push_back(TextTable::num(tuned_gflops(ab.mutate(dev), analysis),
                                     1));
      }
      table.add_row(std::move(row));
    }
    std::cout << "== model ablations, " << obs.name() << " at " << dms
              << " DMs (tuned GFLOP/s) ==\n";
    if (cli.get_flag("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
  }
  return 0;
}
