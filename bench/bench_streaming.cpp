/// Streaming vs. batch dedispersion on this machine: what does chunked,
/// overlap-carry operation cost against the one-shot batch path, and what
/// per-chunk latency does a real-time session see?
///
/// For each chunk size the bench feeds the identical input through a
/// StreamingDedisperser (inline compute, so wall time is the work itself)
/// and reports throughput, the ratio against batch, per-chunk latency
/// percentiles, and the real-time margin — seconds of sky dedispersed per
/// wall second, the number that decides whether a survey backend keeps up.
/// Smaller chunks pay the overlap more often (each window re-stages
/// max_delay extra samples) and lose tile efficiency, which is the latency
/// ↔ throughput trade-off the chunk-size column quantifies.
///
///   ./bench_streaming [--dms 16] [--seconds 2] [--reps 3] [--threads 1]
///                     [--json BENCH_streaming.json]

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/array2d.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "sky/observation.hpp"
#include "stream/streaming_dedisperser.hpp"

namespace {

using namespace ddmc;

struct ChunkedResult {
  double chunk_seconds = 0.0;
  std::size_t chunk_samples = 0;
  std::size_t chunks = 0;
  double seconds = 0.0;  // wall time for the whole stream
  double gflops = 0.0;
  double ratio_vs_batch = 0.0;
  stream::LatencyReport latency;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_streaming",
          "chunked streaming vs batch dedispersion throughput and latency");
  cli.add_option("dms", "number of trial DMs", "16");
  cli.add_option("seconds", "seconds of data to stream", "2");
  cli.add_option("reps", "timed repetitions", "3");
  cli.add_option("threads", "worker threads (1 = inline)", "1");
  cli.add_option("json", "write machine-readable results to this path", "");
  cli.add_flag("async", "run chunks on the double-buffered compute thread "
                        "instead of inline on the feeding thread");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto seconds = static_cast<std::size_t>(cli.get_int("seconds"));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

  const sky::Observation obs = sky::apertif();
  const std::size_t total_out = seconds * obs.samples_per_second();
  const dedisp::Plan batch_plan =
      dedisp::Plan::with_output_samples(obs, dms, total_out);

  // The PR-1 host-sweep optimum shape; tile_time = 200 divides every chunk
  // size below and tile_dm = 4 divides the default DM count.
  dedisp::KernelConfig config{50, 2, 4, 2, 32, 4};
  DDMC_REQUIRE(config.divides(batch_plan),
               "pick --dms/--seconds the 200x4 tile divides");

  Array2D<float> input(batch_plan.channels(), batch_plan.in_samples());
  Rng rng(1234);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
  const double flop = batch_plan.total_flop();

  dedisp::CpuKernelOptions cpu;
  cpu.threads = threads;

  // Batch reference: the one-shot path the streaming session must match.
  Array2D<float> batch_out(batch_plan.dms(), batch_plan.out_samples());
  auto run_batch = [&] {
    dedisp::dedisperse_cpu(batch_plan, config, input.cview(),
                           batch_out.view(), cpu);
  };
  run_batch();  // warmup
  double batch_seconds = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch clock;
    run_batch();
    batch_seconds += clock.seconds();
  }
  batch_seconds /= static_cast<double>(reps);
  const double batch_gflops = flop / batch_seconds * 1e-9;

  // Chunked runs across the survey-relevant chunk ladder.
  const std::vector<double> chunk_ladder = {0.05, 0.1, 0.25, 1.0};
  std::vector<ChunkedResult> results;
  for (double chunk_s : chunk_ladder) {
    const auto chunk_samples = static_cast<std::size_t>(
        chunk_s * static_cast<double>(obs.samples_per_second()));
    if (chunk_samples == 0 || chunk_samples > total_out) continue;

    ChunkedResult res;
    res.chunk_seconds = chunk_s;
    res.chunk_samples = chunk_samples;

    stream::StreamingOptions opts;
    opts.cpu = cpu;
    // Default inline: big feeds ride the zero-copy fast path, so this
    // measures the chunked kernel work itself. --async moves chunks to the
    // compute thread (the ragged-feed deployment shape), which adds a
    // handoff copy that contends with the memory-bound kernel.
    opts.async = cli.get_flag("async");

    auto run_stream = [&](bool keep_latency) {
      stream::StreamingDedisperser session(
          batch_plan.with_chunk(chunk_samples), config, nullptr, opts);
      Stopwatch clock;
      session.push(input.cview());
      session.close();
      const double wall = clock.seconds();
      if (keep_latency) {
        res.latency = session.latency();
        res.chunks = session.chunks_emitted();
      }
      return wall;
    };
    run_stream(false);  // warmup
    double total = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      total += run_stream(r + 1 == reps);
    }
    res.seconds = total / static_cast<double>(reps);
    res.gflops = flop / res.seconds * 1e-9;
    res.ratio_vs_batch = res.gflops / batch_gflops;
    results.push_back(res);
  }
  DDMC_REQUIRE(!results.empty(), "no chunk size fits --seconds");

  std::cout << "== streaming vs batch, " << obs.name() << ", " << dms
            << " DMs x " << seconds << " s (" << total_out
            << " samples), overlap " << batch_plan.max_delay()
            << " samples, config " << config.to_string() << ", threads "
            << threads << ", simd " << simd::backend_name() << " ==\n\n"
            << "batch: " << TextTable::num(batch_gflops, 2) << " GFLOP/s ("
            << TextTable::num(batch_seconds * 1e3, 1) << " ms)\n\n";

  TextTable table({"chunk", "chunks", "GFLOP/s", "vs batch", "p50", "p95",
                   "p99", "margin"});
  for (const ChunkedResult& r : results) {
    table.add_row({TextTable::num(r.chunk_seconds, 2) + " s",
                   std::to_string(r.chunks), TextTable::num(r.gflops, 2),
                   TextTable::num(r.ratio_vs_batch * 100.0, 1) + "%",
                   TextTable::num(r.latency.p50_latency * 1e3, 2) + " ms",
                   TextTable::num(r.latency.p95_latency * 1e3, 2) + " ms",
                   TextTable::num(r.latency.p99_latency * 1e3, 2) + " ms",
                   TextTable::num(r.latency.real_time_margin, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n(margin = seconds of sky per wall second; > 1 keeps up "
               "in real time)\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    bench::JsonArray arr;
    for (const ChunkedResult& r : results) {
      arr.add(bench::JsonObject()
                  .set("chunk_seconds", r.chunk_seconds)
                  .set("chunk_samples", r.chunk_samples)
                  .set("chunks", r.chunks)
                  .set("seconds", r.seconds)
                  .set("gflops", r.gflops)
                  .set("ratio_vs_batch", r.ratio_vs_batch)
                  .set("p50_latency_s", r.latency.p50_latency)
                  .set("p95_latency_s", r.latency.p95_latency)
                  .set("p99_latency_s", r.latency.p99_latency)
                  .set("max_latency_s", r.latency.max_latency)
                  .set("real_time_margin", r.latency.real_time_margin)
                  .set("seconds_per_data_second",
                       r.latency.seconds_per_data_second));
    }
    bench::JsonObject root;
    root.set("bench", "bench_streaming")
        .set("simd_backend", simd::backend_name())
        .set("threads", threads)
        .set("config", config.to_string())
        .set_raw("plan", bench::JsonObject()
                             .set("observation", obs.name())
                             .set("dms", dms)
                             .set("seconds", seconds)
                             .set("out_samples", total_out)
                             .set("channels", batch_plan.channels())
                             .set("overlap_samples", batch_plan.max_delay())
                             .dump())
        .set_raw("batch", bench::JsonObject()
                              .set("seconds", batch_seconds)
                              .set("gflops", batch_gflops)
                              .dump())
        .set_raw("chunked", arr.dump());
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
