/// Cost of surviving faults: supervised sharded execution under injected
/// failures, next to the clean path and the disarmed-failpoint hot cost.
///
/// The supervision machinery (PR 6) is only free if (a) a disarmed
/// failpoint costs nanoseconds, (b) a supervised run with no faults costs
/// the same as the historical fail-fast path, and (c) recovery — retry or
/// full shard reacquisition — costs bounded throughput, never correctness.
/// This bench measures all three on the host: every scenario's output is
/// checked bitwise against the single-engine batch reference before it is
/// timed, so the numbers are recovery overhead for *identical* science.
///
///   ./bench_resilience [--dms 128] [--out-samples 10000] [--reps 3]
///                      [--workers 4] [--json out.json]

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/array2d.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "pipeline/sharding.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/supervisor.hpp"
#include "sky/observation.hpp"

namespace {

using namespace ddmc;

struct ScenarioResult {
  std::string name;
  std::string what;
  double seconds = 0.0;
  double gflops = 0.0;
  double overhead_vs_clean = 0.0;  ///< seconds / clean seconds − 1
  resilience::ShardExecutionReport report;  ///< last timed run's counters
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_resilience",
          "recovery overhead of supervised sharded execution under faults");
  cli.add_option("dms", "number of trial DMs", "128");
  cli.add_option("out-samples", "output samples per trial", "10000");
  cli.add_option("reps", "timed repetitions", "3");
  cli.add_option("workers", "sharded worker threads", "4");
  cli.add_option("json", "write machine-readable results to this path", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto out_samples =
      static_cast<std::size_t>(cli.get_int("out-samples"));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  DDMC_REQUIRE(workers > 0, "--workers must be positive");

  const sky::Observation obs = sky::apertif();
  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(obs, dms, out_samples);
  const double flop = plan.total_flop();

  dedisp::KernelConfig config{50, 2, 4, 2, 32, 4};
  if (!config.divides(plan)) config = dedisp::KernelConfig{1, 1, 1, 1, 32, 4};

  Array2D<float> input(plan.channels(), plan.in_samples());
  Rng rng(99);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }

  // Single-engine batch reference: the bitwise anchor every scenario —
  // including the recovered ones — must reproduce exactly.
  dedisp::CpuKernelOptions single_cpu;
  single_cpu.threads = 1;
  Array2D<float> expected(plan.dms(), plan.out_samples());
  dedisp::dedisperse_cpu(plan, config, input.cview(), expected.view(),
                         single_cpu);

  // ---- Disarmed failpoint hot cost -------------------------------------
  // The hooks ship compiled into release seams; their disarmed price is
  // what every clean execute/push/pop pays.
  const std::size_t fire_iters = 2'000'000;
  resilience::FaultInjector::instance().disarm_all();
  double disarmed_ns = 0.0;
  {
    // One warmup pass so the name string and the atomic are hot.
    for (std::size_t i = 0; i < 1000; ++i) DDMC_FAILPOINT("bench.disarmed");
    Stopwatch clock;
    for (std::size_t i = 0; i < fire_iters; ++i) {
      DDMC_FAILPOINT("bench.disarmed");
    }
    disarmed_ns = clock.seconds() * 1e9 / static_cast<double>(fire_iters);
  }

  // ---- Supervised scenarios --------------------------------------------
  // Each scenario builds its own executor, arms (or not) a fault before
  // every run, proves the warmup output bitwise identical to the single
  // engine, then times `reps` runs. The fault is re-armed per run so a
  // countdown spec fires in every repetition, not just the first.
  const std::size_t fault_shard = workers / 2;  // a mid-range shard

  struct Scenario {
    std::string name;
    std::string what;
    resilience::SupervisionPolicy policy;
    bool armed = false;
    resilience::FaultSpec spec;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario clean;
    clean.name = "clean";
    clean.what = "supervised, no fault armed";
    clean.policy.retry.max_attempts = 3;
    clean.policy.reacquire = true;
    scenarios.push_back(clean);

    Scenario retry;
    retry.name = "retry";
    retry.what = "one transient fault per run, absorbed by retry";
    retry.policy.retry.max_attempts = 3;
    retry.policy.retry.backoff_seconds = 0.0005;
    retry.policy.reacquire = true;
    retry.armed = true;
    retry.spec.trigger = resilience::FaultSpec::Trigger::kCountdown;
    retry.spec.context = fault_shard;
    retry.spec.max_fires = 1;  // first attempt fails, the retry lands
    scenarios.push_back(retry);

    Scenario reacquire;
    reacquire.name = "reacquire";
    reacquire.what = "one worker permanently dead, shard reacquired";
    reacquire.policy.retry.max_attempts = 2;
    reacquire.policy.retry.backoff_seconds = 0.0005;
    reacquire.policy.reacquire = true;
    reacquire.armed = true;
    reacquire.spec.trigger = resilience::FaultSpec::Trigger::kCountdown;
    reacquire.spec.context = fault_shard;
    reacquire.spec.max_fires = 0;  // never recovers: every attempt dies
    scenarios.push_back(reacquire);
  }

  std::vector<ScenarioResult> results;
  for (const Scenario& sc : scenarios) {
    pipeline::ShardedOptions opts;
    opts.workers = workers;
    opts.supervision = sc.policy;
    const pipeline::ShardedDedisperser sharded(plan, config, opts);

    Array2D<float> out(plan.dms(), plan.out_samples());
    const auto run = [&] {
      if (sc.armed) {
        resilience::FaultInjector::instance().arm("shard.task", sc.spec);
      }
      sharded.dedisperse(input.cview(), out.view());
      resilience::FaultInjector::instance().disarm_all();
    };

    run();  // warmup + recovery-correctness proof
    for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
      for (std::size_t t = 0; t < plan.out_samples(); ++t) {
        DDMC_REQUIRE(out(dm, t) == expected(dm, t),
                     "scenario '" + sc.name +
                         "' diverged from the single-engine path");
      }
    }

    ScenarioResult res;
    res.name = sc.name;
    res.what = sc.what;
    double total = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      Stopwatch clock;
      run();
      total += clock.seconds();
    }
    res.seconds = total / static_cast<double>(reps);
    res.gflops = flop / res.seconds * 1e-9;
    res.report = sharded.last_report();
    results.push_back(res);
  }
  const double clean_seconds = results.front().seconds;
  for (ScenarioResult& r : results) {
    r.overhead_vs_clean = r.seconds / clean_seconds - 1.0;
  }

  std::cout << "== supervised sharded execution under faults, " << obs.name()
            << ", " << dms << " DMs x " << out_samples << " samples, "
            << workers << " workers, config " << config.to_string()
            << ", simd " << simd::backend_name() << " ==\n\n"
            << "disarmed failpoint: " << TextTable::num(disarmed_ns, 1)
            << " ns per evaluation (" << fire_iters
            << " iterations)\n\n";

  TextTable table({"scenario", "GFLOP/s", "seconds", "overhead", "retries",
                   "reassignments"});
  for (const ScenarioResult& r : results) {
    table.add_row({r.name, TextTable::num(r.gflops, 2),
                   TextTable::num(r.seconds * 1e3, 1) + " ms",
                   TextTable::num(r.overhead_vs_clean * 100.0, 1) + " %",
                   std::to_string(r.report.retries),
                   std::to_string(r.report.reassignments)});
  }
  table.print(std::cout);
  std::cout << "\n(every scenario's output is verified bitwise identical to "
               "the single-engine path\n before timing — overhead buys "
               "recovery, never a different answer)\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    bench::JsonArray arr;
    for (const ScenarioResult& r : results) {
      arr.add(bench::JsonObject()
                  .set("scenario", r.name)
                  .set("description", r.what)
                  .set("seconds", r.seconds)
                  .set("gflops", r.gflops)
                  .set("overhead_vs_clean", r.overhead_vs_clean)
                  .set("attempts", r.report.attempts)
                  .set("retries", r.report.retries)
                  .set("reassignments", r.report.reassignments)
                  .set("bitwise_identical", true));
    }
    bench::JsonObject root;
    root.set("bench", "bench_resilience")
        .set("simd_backend", simd::backend_name())
        .set("workers", workers)
        .set("config", config.to_string())
        .set("disarmed_failpoint_ns", disarmed_ns)
        .set_raw("plan", bench::JsonObject()
                             .set("observation", obs.name())
                             .set("dms", dms)
                             .set("out_samples", out_samples)
                             .set("channels", plan.channels())
                             .set("max_delay", plan.max_delay())
                             .dump())
        .set_raw("scenarios", arr.dump());
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
