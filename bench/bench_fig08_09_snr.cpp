/// Reproduces **Fig. 8** (Apertif) and **Fig. 9** (LOFAR): the
/// signal-to-noise ratio of the tuned optimum — how many standard deviations
/// the best configuration sits above the mean of all meaningful
/// configurations — versus the number of trial DMs.
///
/// Paper's qualitative claims this bench should reproduce:
///  - SNRs of roughly 2–4 across platforms and instances;
///  - by Chebyshev's inequality, the probability of *guessing* a
///    configuration at least that good is below 1/SNR² (the paper quotes
///    <39% best case, <5% worst case).

#include <iostream>

#include "bench_common.hpp"
#include "common/statistics.hpp"

namespace {

using namespace ddmc;

void run_setup(const sky::Observation& obs, std::size_t max_dms, bool csv,
               const char* figure) {
  const bench::SetupSweep sweep(obs, max_dms);
  std::cout << "== " << figure << ": SNR of the tuned optimum, " << obs.name()
            << " ==\n";
  bench::print_series(
      std::cout, sweep, "(best - mean) / stddev over all configurations",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = sweep.results[d][i];
        return cell.result
                   ? TextTable::num(cell.result->snr_of_optimum(), 2)
                   : std::string("-");
      },
      csv);
  bench::print_series(
      std::cout, sweep,
      "Chebyshev bound on the probability of guessing this well",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = sweep.results[d][i];
        if (!cell.result) return std::string("-");
        return TextTable::num(
            chebyshev_bound(cell.result->snr_of_optimum()), 3);
      },
      csv);
}

}  // namespace

int main(int argc, char** argv) {
  ddmc::Cli cli("bench_fig08_09_snr",
                "Figs. 8-9: SNR of the tuned optimum vs #DMs");
  if (!ddmc::bench::parse_bench_cli(cli, argc, argv)) return 0;
  const auto max_dms = static_cast<std::size_t>(cli.get_int("max-dms"));
  const bool csv = cli.get_flag("csv");
  run_setup(ddmc::sky::apertif(), max_dms, csv, "Fig. 8");
  run_setup(ddmc::sky::lofar(), max_dms, csv, "Fig. 9");
  return 0;
}
