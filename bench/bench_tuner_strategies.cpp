/// Guided tuning vs. the paper's exhaustive sweep, measured on this
/// machine: ExhaustiveSearch times every deduplicated host configuration
/// (the §IV-A method), RandomSearch and CoordinateDescent time a fraction
/// of them, and the headline numbers are configs-evaluated vs. the fraction
/// of the exhaustive optimum each strategy recovers. The second half
/// demonstrates the TuningCache ladder: a cold guided search, a warm exact
/// hit (zero measurements) and a nearest-neighbor transfer onto a plan the
/// cache has never seen (also zero measurements).
///
/// The final leg races whole engines: tune_guided with several registry
/// ids searches each engine's *own* declared axes and ranks the finalists
/// by measured wall seconds — platform choice as a tuning decision.
///
///   ./bench_tuner_strategies [--dms 16] [--out-samples 2000] [--reps 2]
///                            [--random-samples 64] [--seed 42] [--scalar]
///                            [--json BENCH_tuner_strategies.json]

#include <iostream>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "engine/engine_config.hpp"
#include "sky/observation.hpp"
#include "tuner/host_tuner.hpp"
#include "tuner/search_space.hpp"
#include "tuner/strategy.hpp"
#include "tuner/tuning_cache.hpp"

namespace {

const char* source_name(ddmc::tuner::GuidedTuningOutcome::Source s) {
  using Source = ddmc::tuner::GuidedTuningOutcome::Source;
  switch (s) {
    case Source::kCacheHit: return "cache-hit";
    case Source::kTransfer: return "transfer";
    case Source::kSearch: return "search";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("bench_tuner_strategies",
          "guided search strategies vs. the exhaustive sweep, measured");
  cli.add_option("dms", "number of trial DMs", "16");
  cli.add_option("out-samples", "output window in samples", "2000");
  cli.add_option("reps", "timed repetitions per configuration", "2");
  cli.add_option("random-samples", "configs RandomSearch may time", "64");
  cli.add_option("seed", "search / input seed", "42");
  cli.add_option("json", "write machine-readable results to this path", "");
  cli.add_flag("scalar", "measure the scalar engine instead of SIMD");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto out = static_cast<std::size_t>(cli.get_int("out-samples"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(sky::apertif(), dms, out);

  tuner::HostTuningOptions opt;
  opt.repetitions = static_cast<std::size_t>(cli.get_int("reps"));
  opt.warmup_runs = 1;
  opt.vectorize = !cli.get_flag("scalar");

  const auto raw =
      tuner::enumerate_host_configs(plan, opt.max_work_group_size);
  const auto kernel_candidates = tuner::host_sweep_candidates(plan, opt);
  const auto axes = engine::kernel_config_axes(kernel_candidates);
  std::vector<engine::EngineConfig> candidates;
  candidates.reserve(kernel_candidates.size());
  for (const dedisp::KernelConfig& cfg : kernel_candidates) {
    candidates.push_back(engine::encode_kernel_config(cfg));
  }
  std::cout << "== tuner strategies, Apertif-reduced, " << dms << " DMs x "
            << out << " samples, engine "
            << (opt.vectorize ? simd::backend_name() : "scalar") << " ==\n"
            << "candidate space: " << raw.size() << " enumerated, "
            << candidates.size()
            << " distinct host kernels after deduplication\n\n";

  struct Row {
    std::string name;
    tuner::StrategyResult result;
  };
  std::vector<Row> rows;
  {
    tuner::HostKernelEvaluator evaluator(plan, opt, seed);
    rows.push_back(
        {"exhaustive",
         tuner::ExhaustiveSearch().search(plan, axes, candidates, evaluator)});
  }
  {
    tuner::HostKernelEvaluator evaluator(plan, opt, seed);
    const tuner::RandomSearch random(
        static_cast<std::size_t>(cli.get_int("random-samples")), seed);
    rows.push_back(
        {"random", random.search(plan, axes, candidates, evaluator)});
  }
  {
    tuner::HostKernelEvaluator evaluator(plan, opt, seed);
    const tuner::CoordinateDescent descent(seed);
    rows.push_back({"coordinate-descent",
                    descent.search(plan, axes, candidates, evaluator)});
  }

  const double exhaustive_gflops = rows.front().result.best.gflops;
  TextTable table({"strategy", "evaluated", "of space", "best GFLOP/s",
                   "of optimum", "aborted", "P[guess>=best]"});
  for (const Row& row : rows) {
    const auto& r = row.result;
    table.add_row(
        {row.name, std::to_string(r.evaluated),
         TextTable::num(100.0 * static_cast<double>(r.evaluated) /
                            static_cast<double>(r.candidates),
                        1) +
             "%",
         TextTable::num(r.best.gflops, 2),
         TextTable::num(100.0 * r.best.gflops / exhaustive_gflops, 1) + "%",
         std::to_string(r.aborted), TextTable::num(r.chebyshev_p, 3)});
  }
  table.print(std::cout);

  // --- the cache ladder: cold search, warm hit, neighbor transfer --------
  tuner::TuningCache cache;
  tuner::GuidedTuningOptions guided;
  guided.host = opt;
  guided.seed = seed;
  const tuner::GuidedTuningOutcome cold = tuner::tune_guided(plan, cache, guided);
  const tuner::GuidedTuningOutcome warm = tuner::tune_guided(plan, cache, guided);
  const dedisp::Plan neighbor =
      dedisp::Plan::with_output_samples(sky::apertif(), dms * 2, out);
  const tuner::GuidedTuningOutcome transfer =
      tuner::tune_guided(neighbor, cache, guided);

  std::cout << "\ncache ladder (coordinate-descent fallback):\n"
            << "  cold:     " << source_name(cold.source) << ", "
            << cold.configs_evaluated << " configs measured -> "
            << cold.config.to_string() << "\n"
            << "  warm:     " << source_name(warm.source) << ", "
            << warm.configs_evaluated << " configs measured\n"
            << "  " << dms * 2 << " DMs: " << source_name(transfer.source)
            << ", " << transfer.configs_evaluated
            << " configs measured (transfer from the " << dms
            << "-DM entry)\n";

  // --- the engine race: platform choice as a tuning axis -----------------
  // Each engine searches its *own* declared axes (the tiled kernel shape,
  // the subband split, the baseline's single empty config) and the
  // finalists are ranked by measured wall seconds. The warm rerun answers
  // every engine from the cache: zero measurements.
  tuner::TuningCache race_cache;
  tuner::GuidedTuningOptions race = guided;
  race.engines = {"cpu_tiled", "cpu_baseline", "subband"};
  const tuner::GuidedTuningOutcome race_cold =
      tuner::tune_guided(plan, race_cache, race);
  const tuner::GuidedTuningOutcome race_warm =
      tuner::tune_guided(plan, race_cache, race);
  std::cout << "\nengine race (cpu_tiled vs cpu_baseline vs subband, ranked"
               " by wall seconds):\n"
            << "  cold: " << race_cold.engine_id << " wins at "
            << TextTable::num(race_cold.seconds * 1e3, 3) << " ms/call ("
            << TextTable::num(race_cold.gflops, 2) << " GFLOP/s), "
            << race_cold.configs_evaluated
            << " configs measured across all engines -> "
            << race_cold.config.to_string() << "\n"
            << "  warm: " << source_name(race_warm.source) << ", "
            << race_warm.configs_evaluated << " configs measured, winner "
            << race_warm.engine_id << "\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    auto config_json = [](const engine::EngineConfig& c) {
      bench::JsonObject j;
      j.set("encoded", c.encode());
      for (const auto& [name, value] : c.axes) {
        j.set(name, static_cast<std::size_t>(value));
      }
      return j.dump();
    };
    bench::JsonArray strategies;
    for (const Row& row : rows) {
      const auto& r = row.result;
      strategies.add(
          bench::JsonObject()
              .set("strategy", row.name)
              .set("candidates", r.candidates)
              .set("evaluated", r.evaluated)
              .set("aborted", r.aborted)
              .set("fraction_of_space",
                   static_cast<double>(r.evaluated) /
                       static_cast<double>(r.candidates))
              .set("best_gflops", r.best.gflops)
              .set("fraction_of_exhaustive_optimum",
                   r.best.gflops / exhaustive_gflops)
              .set("chebyshev_p", r.chebyshev_p)
              .set_raw("best_config", config_json(r.best.config)));
    }
    auto outcome_json = [&](const tuner::GuidedTuningOutcome& o) {
      bench::JsonObject j;
      j.set("source", source_name(o.source))
          .set("engine", o.engine_id)
          .set("seconds", o.seconds)
          .set("gflops", o.gflops)
          .set("configs_evaluated", o.configs_evaluated)
          .set_raw("config", config_json(o.config));
      return j.dump();
    };
    bench::JsonObject root;
    root.set("bench", "bench_tuner_strategies")
        .set("engine", opt.vectorize ? simd::backend_name() : "scalar")
        .set_raw("plan", bench::JsonObject()
                             .set("observation", "Apertif")
                             .set("dms", dms)
                             .set("out_samples", out)
                             .set("channels", plan.channels())
                             .dump())
        .set("repetitions", opt.repetitions)
        .set("enumerated_configs", raw.size())
        .set("deduplicated_configs", candidates.size())
        .set("exhaustive_gflops", exhaustive_gflops)
        .set_raw("strategies", strategies.dump())
        .set_raw("cache", bench::JsonObject()
                              .set_raw("cold", outcome_json(cold))
                              .set_raw("warm", outcome_json(warm))
                              .set_raw("transfer", outcome_json(transfer))
                              .dump())
        .set_raw("engine_race",
                 bench::JsonObject()
                     .set("engines", "cpu_tiled,cpu_baseline,subband")
                     .set_raw("cold", outcome_json(race_cold))
                     .set_raw("warm", outcome_json(race_warm))
                     .dump());
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
