/// Reproduces **Fig. 10**: the distribution of all meaningful
/// configurations over achieved GFLOP/s (the paper shows the HD7970 on
/// Apertif), with the population average marked.
///
/// Paper's qualitative claims this bench should reproduce:
///  - a long-tailed distribution whose bulk sits far below the optimum;
///  - exactly one (or very few) configurations reach the best bin.

#include <algorithm>
#include <iostream>

#include "common/cli.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "sky/observation.hpp"
#include "tuner/tuner.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("bench_fig10_histogram",
          "Fig. 10: histogram of configurations over GFLOP/s");
  cli.add_option("device", "device preset (HD7970, XeonPhi, GTX680, K20, "
                           "Titan)", "HD7970");
  cli.add_option("setup", "observational setup: apertif or lofar", "apertif");
  cli.add_option("dms", "number of trial DMs", "1024");
  cli.add_option("bins", "number of histogram bins", "40");
  cli.add_flag("csv", "emit only CSV output");
  if (!cli.parse(argc, argv)) return 0;

  const ocl::DeviceModel device = ocl::device_by_name(cli.get("device"));
  const sky::Observation obs =
      cli.get("setup") == "lofar" ? sky::lofar() : sky::apertif();
  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto bins = static_cast<std::size_t>(cli.get_int("bins"));

  const ocl::PlanAnalysis analysis((dedisp::Plan(obs, dms)));
  tuner::TuningOptions opt;
  opt.keep_population = true;
  const tuner::TuningResult result = tuner::tune(device, analysis, opt);

  std::vector<double> gflops;
  gflops.reserve(result.population.size());
  for (const auto& cp : result.population) gflops.push_back(cp.perf.gflops);
  const Histogram hist = make_histogram(gflops, bins, 0.0, result.stats.max);

  std::cout << "== Fig. 10: configuration histogram, " << device.name
            << " / " << obs.name() << " / " << dms << " DMs ==\n"
            << "configurations: " << result.evaluated
            << " (skipped as invalid: " << result.skipped << ")\n"
            << "mean: " << TextTable::num(result.stats.mean, 1)
            << " GFLOP/s   best: " << TextTable::num(result.stats.max, 1)
            << " GFLOP/s   SNR of optimum: "
            << TextTable::num(result.snr_of_optimum(), 2) << "\n"
            << "best configuration: " << result.best.config.to_string()
            << "\n\n";

  TextTable table({"GFLOP/s bin", "configs", "bar"});
  const std::size_t peak =
      *std::max_element(hist.counts.begin(), hist.counts.end());
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    const std::size_t width =
        peak == 0 ? 0 : hist.counts[b] * 50 / std::max<std::size_t>(peak, 1);
    table.add_row({TextTable::num(hist.bin_center(b), 1),
                   std::to_string(hist.counts[b]),
                   std::string(width, '#')});
  }
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
