/// Reproduces **Fig. 11** (Apertif) and **Fig. 12** (LOFAR): performance in
/// the 0-DM scenario of §IV-C — every trial DM forced to zero, so every
/// dedispersed series is identical and data-reuse is theoretically perfect.
///
/// Paper's qualitative claims this bench should reproduce:
///  - Apertif barely changes versus Fig. 6 (its real reuse was already
///    saturating the hardware);
///  - LOFAR rises dramatically, to Apertif-like levels: the observational
///    setup, not the algorithm, was the limit;
///  - even "unbounded AI" does not reach the compute peak: hardware
///    (instruction issue, LDS throughput) caps it — dedispersion stays
///    memory-bound in every *real* scenario.

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace ddmc;

void run_setup(const sky::Observation& real_obs, std::size_t max_dms,
               bool csv, const char* figure) {
  const bench::SetupSweep zero(real_obs.zero_dm_variant(), max_dms);
  const bench::SetupSweep real(real_obs, max_dms);
  std::cout << "== " << figure << ": performance with perfect reuse "
            << "(all trial DMs = 0), " << real_obs.name() << " ==\n";
  bench::print_series(
      std::cout, zero, "GFLOP/s per device, 0-DM scenario",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = zero.results[d][i];
        return cell.result ? TextTable::num(cell.result->best.perf.gflops, 1)
                           : std::string("-");
      },
      csv);
  bench::print_series(
      std::cout, zero, "speedup of 0-DM over the real delays (Fig. 6/7)",
      [&](std::size_t d, std::size_t i) {
        const auto& z = zero.results[d][i];
        const auto& r = real.results[d][i];
        if (!z.result || !r.result) return std::string("-");
        return TextTable::num(
            z.result->best.perf.gflops / r.result->best.perf.gflops, 2);
      },
      csv);
}

}  // namespace

int main(int argc, char** argv) {
  ddmc::Cli cli("bench_fig11_12_zerodm",
                "Figs. 11-12: the 0-DM perfect-reuse scenario");
  if (!ddmc::bench::parse_bench_cli(cli, argc, argv)) return 0;
  const auto max_dms = static_cast<std::size_t>(cli.get_int("max-dms"));
  const bool csv = cli.get_flag("csv");
  run_setup(ddmc::sky::apertif(), max_dms, csv, "Fig. 11");
  run_setup(ddmc::sky::lofar(), max_dms, csv, "Fig. 12");
  return 0;
}
