/// Reproduces **Fig. 13** (Apertif) and **Fig. 14** (LOFAR): the speedup of
/// the per-instance auto-tuned kernel over the best *fixed* configuration —
/// the single configuration that, valid on all instances, maximizes the
/// summed GFLOP/s (§V-D's stand-in for expert manual tuning).
///
/// Paper's qualitative claims this bench should reproduce:
///  - Apertif: tuned ≈3× the fixed configuration on the GPUs, a smaller
///    gain on the Xeon Phi;
///  - LOFAR: gains shrink (the optimum is more stable there): ≈1.5× for
///    NVIDIA, close to 1× for the HD7970 and Phi;
///  - speedup never drops below 1 (the tuned optimum dominates by
///    definition).

#include <iostream>

#include "bench_common.hpp"
#include "tuner/fixed_config.hpp"

namespace {

using namespace ddmc;

void run_setup(const sky::Observation& obs, std::size_t max_dms, bool csv,
               const char* figure) {
  const bench::SetupSweep sweep(obs, max_dms);
  std::cout << "== " << figure << ": speedup of tuned over best fixed "
            << "configuration, " << obs.name() << " ==\n";

  // Fixed config per device, over the instances that fit its memory.
  std::vector<std::vector<double>> fixed_gflops(sweep.devices.size());
  for (std::size_t d = 0; d < sweep.devices.size(); ++d) {
    std::vector<const ocl::PlanAnalysis*> instances;
    std::vector<std::size_t> index_map;
    for (std::size_t i = 0; i < sweep.instances.size(); ++i) {
      if (sweep.results[d][i].result) {
        instances.push_back(&sweep.analyses[i]);
        index_map.push_back(i);
      }
    }
    fixed_gflops[d].assign(sweep.instances.size(), 0.0);
    const tuner::FixedConfigResult fixed =
        tuner::best_fixed_config(sweep.devices[d], instances);
    if (!csv) {
      std::cout << sweep.devices[d].name
                << ": fixed = " << fixed.config.to_string() << "\n";
    }
    for (std::size_t k = 0; k < index_map.size(); ++k) {
      fixed_gflops[d][index_map[k]] = fixed.per_instance_gflops[k];
    }
  }
  if (!csv) std::cout << "\n";

  bench::print_series(
      std::cout, sweep, "tuned GFLOP/s / fixed GFLOP/s (higher is better)",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = sweep.results[d][i];
        if (!cell.result || fixed_gflops[d][i] <= 0.0) return std::string("-");
        return TextTable::num(
            cell.result->best.perf.gflops / fixed_gflops[d][i], 2);
      },
      csv);
}

}  // namespace

int main(int argc, char** argv) {
  ddmc::Cli cli("bench_fig13_14_fixed_speedup",
                "Figs. 13-14: tuned vs best fixed configuration");
  if (!ddmc::bench::parse_bench_cli(cli, argc, argv)) return 0;
  const auto max_dms = static_cast<std::size_t>(cli.get_int("max-dms"));
  const bool csv = cli.get_flag("csv");
  run_setup(ddmc::sky::apertif(), max_dms, csv, "Fig. 13");
  run_setup(ddmc::sky::lofar(), max_dms, csv, "Fig. 14");
  return 0;
}
