/// Reproduces **Fig. 6** (Apertif) and **Fig. 7** (LOFAR): performance of
/// the auto-tuned dedispersion kernel, in GFLOP/s, versus the number of
/// trial DMs, for the five Table I accelerators — plus the "real-time" line.
///
/// Paper's qualitative claims this bench should reproduce:
///  - better-than-linear ramp, then a plateau;
///  - Apertif: HD7970 on top (≈2× the NVIDIA cluster), Xeon Phi last (≈7.5×
///    below the HD7970);
///  - LOFAR: overall lower and compressed; bandwidth ranking (HD7970/Titan
///    top); GPUs ≈2.5× the Phi;
///  - every GPU above the real-time line, the Phi below it on Apertif.

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace ddmc;

void run_setup(const sky::Observation& obs, std::size_t max_dms, bool csv,
               const char* figure) {
  const bench::SetupSweep sweep(obs, max_dms);
  std::cout << "== " << figure << ": tuned dedispersion performance, "
            << obs.name() << " (GFLOP/s; higher is better) ==\n";
  bench::print_series(
      std::cout, sweep, "GFLOP/s per device (\"-\" = exceeds device memory)",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = sweep.results[d][i];
        return cell.result ? TextTable::num(cell.result->best.perf.gflops, 1)
                           : std::string("-");
      },
      csv);

  // The real-time threshold: dedisperse one second in at most one second.
  TextTable rt({"DMs", "real-time GFLOP/s"});
  for (std::size_t dms : sweep.instances) {
    rt.add_row({std::to_string(dms),
                TextTable::num(ocl::real_time_gflops(obs, dms), 2)});
  }
  if (csv) {
    std::cout << "# real-time threshold\n";
    rt.print_csv(std::cout);
  } else {
    std::cout << "real-time threshold (must exceed to keep up)\n";
    rt.print(std::cout);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ddmc::Cli cli("bench_fig06_07_performance",
                "Figs. 6-7: tuned performance vs #DMs per accelerator");
  if (!ddmc::bench::parse_bench_cli(cli, argc, argv)) return 0;
  const auto max_dms = static_cast<std::size_t>(cli.get_int("max-dms"));
  const bool csv = cli.get_flag("csv");
  run_setup(ddmc::sky::apertif(), max_dms, csv, "Fig. 6");
  run_setup(ddmc::sky::lofar(), max_dms, csv, "Fig. 7");
  return 0;
}
