/// The paper's *method* on real hardware: auto-tune the tiled host kernel
/// by wall-clock measurement (§IV: every meaningful configuration, averaged
/// repetitions, keep the fastest) on a reduced Apertif instance, and report
/// the measured optimum, the population statistics and the measured
/// SNR-of-optimum — the live counterpart of Figs. 8–10. The sweep covers
/// the host engine's widened space (channel_block and unroll on top of the
/// paper's four parameters) and reports the untuned default configuration
/// next to the optimum, so the output shows the pre-vs-post-tuning gain.
///
///   ./bench_host_tuning [--dms 16] [--out-samples 2000] [--reps 2]
///                       [--scalar] [--json BENCH_host_tuning.json]

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "sky/observation.hpp"
#include "tuner/host_tuner.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("bench_host_tuning",
          "measured auto-tuning of the host kernel on this machine");
  cli.add_option("dms", "number of trial DMs", "16");
  cli.add_option("out-samples", "output window in samples", "2000");
  cli.add_option("reps", "timed repetitions per configuration", "2");
  cli.add_option("top", "print the N best configurations", "8");
  cli.add_option("json", "write machine-readable results to this path", "");
  cli.add_flag("scalar", "sweep the scalar engine instead of SIMD");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto out = static_cast<std::size_t>(cli.get_int("out-samples"));
  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(sky::apertif(), dms, out);

  tuner::HostTuningOptions opt;
  opt.repetitions = static_cast<std::size_t>(cli.get_int("reps"));
  opt.warmup_runs = 1;
  opt.vectorize = !cli.get_flag("scalar");

  const tuner::HostTuningResult result = tuner::tune_host(plan, opt);

  // Pre-tuning anchor: the neutral default configuration, measured with the
  // same engine and repetition count.
  const tuner::HostTuningResult untuned =
      tuner::tune_host(plan, opt, {dedisp::KernelConfig{1, 1, 1, 1}});
  const double pre_gflops = untuned.best.gflops;

  std::cout << "== measured host tuning, Apertif-reduced, " << dms
            << " DMs x " << out << " samples, engine "
            << (opt.vectorize ? simd::backend_name() : "scalar") << " ==\n"
            << "configurations measured: " << result.timings.size() << "\n"
            << "pre-tuning (default config): "
            << TextTable::num(pre_gflops, 2) << " GFLOP/s\n"
            << "best: " << result.best.config.to_string() << " -> "
            << TextTable::num(result.best.gflops, 2) << " GFLOP/s ("
            << TextTable::num(result.best.seconds * 1e3, 1) << " ms), "
            << TextTable::num(result.best.gflops / pre_gflops, 2)
            << "x the untuned default\n"
            << "population: mean " << TextTable::num(result.stats.mean, 2)
            << ", sd " << TextTable::num(result.stats.stddev, 2)
            << ", measured SNR of optimum "
            << TextTable::num(result.stats.snr_of_max, 2) << "\n\n";

  std::vector<tuner::HostConfigTiming> sorted = result.timings;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.gflops > b.gflops; });
  const auto top_n =
      std::min<std::size_t>(sorted.size(),
                            static_cast<std::size_t>(cli.get_int("top")));
  TextTable table({"rank", "config", "GFLOP/s", "ms"});
  for (std::size_t i = 0; i < top_n; ++i) {
    table.add_row({std::to_string(i + 1), sorted[i].config.to_string(),
                   TextTable::num(sorted[i].gflops, 2),
                   TextTable::num(sorted[i].seconds * 1e3, 1)});
  }
  table.print(std::cout);
  std::cout << "\nworst measured: "
            << TextTable::num(sorted.back().gflops, 2)
            << " GFLOP/s -> tuned is "
            << TextTable::num(result.best.gflops / sorted.back().gflops, 1)
            << "x the worst and "
            << TextTable::num(result.best.gflops / result.stats.mean, 2)
            << "x the average configuration\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    auto config_json = [](const dedisp::KernelConfig& c) {
      return bench::JsonObject()
          .set("wi_time", c.wi_time)
          .set("wi_dm", c.wi_dm)
          .set("elem_time", c.elem_time)
          .set("elem_dm", c.elem_dm)
          .set("channel_block", c.channel_block)
          .set("unroll", c.unroll)
          .dump();
    };
    bench::JsonArray arr;
    for (const auto& t : result.timings) {
      bench::JsonObject o;
      o.set_raw("config", config_json(t.config))
          .set("seconds", t.seconds)
          .set("gflops", t.gflops);
      arr.add(o);
    }
    bench::JsonObject root;
    root.set("bench", "bench_host_tuning")
        .set("engine",
             opt.vectorize ? simd::backend_name() : "scalar")
        .set_raw("plan", bench::JsonObject()
                             .set("observation", "Apertif")
                             .set("dms", dms)
                             .set("out_samples", out)
                             .set("channels", plan.channels())
                             .dump())
        .set("configurations_measured", result.timings.size())
        .set("pre_tuning_gflops", pre_gflops)
        .set("tuned_gflops", result.best.gflops)
        .set("tuning_speedup", result.best.gflops / pre_gflops)
        .set_raw("best_config", config_json(result.best.config))
        .set_raw("population",
                 bench::JsonObject()
                     .set("mean", result.stats.mean)
                     .set("stddev", result.stats.stddev)
                     .set("min", result.stats.min)
                     .set("max", result.stats.max)
                     .set("snr_of_max", result.stats.snr_of_max)
                     .dump())
        .set_raw("timings", arr.dump());
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
