/// The paper's *method* on real hardware: auto-tune the tiled host kernel
/// by wall-clock measurement (§IV: every meaningful configuration, averaged
/// repetitions, keep the fastest) on a reduced Apertif instance, and report
/// the measured optimum, the population statistics and the measured
/// SNR-of-optimum — the live counterpart of Figs. 8–10.
///
///   ./bench_host_tuning [--dms 16] [--out-samples 2000] [--reps 2]

#include <algorithm>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "sky/observation.hpp"
#include "tuner/host_tuner.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("bench_host_tuning",
          "measured auto-tuning of the host kernel on this machine");
  cli.add_option("dms", "number of trial DMs", "16");
  cli.add_option("out-samples", "output window in samples", "2000");
  cli.add_option("reps", "timed repetitions per configuration", "2");
  cli.add_option("top", "print the N best configurations", "8");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto out = static_cast<std::size_t>(cli.get_int("out-samples"));
  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(sky::apertif(), dms, out);

  tuner::HostTuningOptions opt;
  opt.repetitions = static_cast<std::size_t>(cli.get_int("reps"));
  opt.warmup_runs = 1;

  const tuner::HostTuningResult result = tuner::tune_host(plan, opt);

  std::cout << "== measured host tuning, Apertif-reduced, " << dms
            << " DMs x " << out << " samples ==\n"
            << "configurations measured: " << result.timings.size() << "\n"
            << "best: " << result.best.config.to_string() << " -> "
            << TextTable::num(result.best.gflops, 2) << " GFLOP/s ("
            << TextTable::num(result.best.seconds * 1e3, 1) << " ms)\n"
            << "population: mean " << TextTable::num(result.stats.mean, 2)
            << ", sd " << TextTable::num(result.stats.stddev, 2)
            << ", measured SNR of optimum "
            << TextTable::num(result.stats.snr_of_max, 2) << "\n\n";

  std::vector<tuner::HostConfigTiming> sorted = result.timings;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.gflops > b.gflops; });
  const auto top_n =
      std::min<std::size_t>(sorted.size(),
                            static_cast<std::size_t>(cli.get_int("top")));
  TextTable table({"rank", "config", "GFLOP/s", "ms"});
  for (std::size_t i = 0; i < top_n; ++i) {
    table.add_row({std::to_string(i + 1), sorted[i].config.to_string(),
                   TextTable::num(sorted[i].gflops, 2),
                   TextTable::num(sorted[i].seconds * 1e3, 1)});
  }
  table.print(std::cout);
  std::cout << "\nworst measured: "
            << TextTable::num(sorted.back().gflops, 2)
            << " GFLOP/s -> tuned is "
            << TextTable::num(result.best.gflops / sorted.back().gflops, 1)
            << "x the worst and "
            << TextTable::num(result.best.gflops / result.stats.mean, 2)
            << "x the average configuration\n";
  return 0;
}
