/// Reproduces **Table I**: characteristics of the used many-core
/// accelerators (compute elements, peak GFLOP/s, peak GB/s), extended with
/// the execution limits and the calibration constants the device models add
/// on top of the paper's three columns.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ocl/device_presets.hpp"

int main(int argc, char** argv) {
  using namespace ddmc;
  Cli cli("bench_table1", "Table I: characteristics of the accelerators");
  cli.add_flag("csv", "emit only CSV output");
  cli.add_flag("extended", "also print execution limits and calibration");
  if (!cli.parse(argc, argv)) return 0;

  TextTable table({"Platform", "CEs", "GFLOP/s", "GB/s"});
  for (const ocl::DeviceModel& dev : ocl::table1_devices()) {
    table.add_row({dev.vendor + " " + dev.name,
                   std::to_string(dev.lanes_per_cu) + " x " +
                       std::to_string(dev.compute_units),
                   TextTable::num(dev.peak_gflops, 0),
                   TextTable::num(dev.peak_bandwidth_gbs, 0)});
  }
  std::cout << "== Table I: characteristics of the many-core accelerators ==\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (cli.get_flag("extended")) {
    TextTable ext({"Platform", "max WG", "regs/item", "local KiB", "mem GB",
                   "instr/flop", "bw eff"});
    for (const ocl::DeviceModel& dev : ocl::table1_devices()) {
      ext.add_row({dev.name, std::to_string(dev.max_work_group_size),
                   std::to_string(dev.max_regs_per_item),
                   TextTable::num(dev.local_mem_per_group_bytes / 1024.0, 0),
                   TextTable::num(dev.memory_gb, 0),
                   TextTable::num(dev.instr_per_flop, 1),
                   TextTable::num(dev.bw_efficiency, 2)});
    }
    std::cout << "\nexecution limits and calibration constants\n";
    if (cli.get_flag("csv")) {
      ext.print_csv(std::cout);
    } else {
      ext.print(std::cout);
    }
  }
  return 0;
}
