/// Engine-matrix throughput: every registered engine under one harness.
///
/// The paper's point is that no single implementation wins everywhere; the
/// registry makes "which engine" a runtime choice, and this bench is the
/// number behind that choice on *this* machine. For each registered engine
/// it runs the identical Apertif-default scenario (same plan, same input),
/// reports measured GFLOP/s on the paper's metric (plan FLOPs / wall
/// seconds, so approximation engines that do less work score higher), and
/// records a perf-model estimate next to every measurement — this container
/// has one CPU, so modeled numbers are what transfer to real hardware.
///
/// Bitwise-exact engines are differentially checked against the reference
/// output before timing.
///
/// A second act sweeps the trial count to locate the brute-force ↔
/// Fourier-domain crossover: the fdmt engine's asymptotic win only pays
/// above some number of DM trials, and that crossover is a property of
/// this machine worth recording next to the single-scenario matrix.
///
///   ./bench_engine_matrix [--dms 64] [--out-samples 10000] [--reps 3]
///                         [--sweep-dms 16,64,256,1024] [--json out.json]

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/array2d.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dedisp/fdmt.hpp"
#include "dedisp/quantize.hpp"
#include "dedisp/subband.hpp"
#include "engine/registry.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "sky/observation.hpp"

namespace {

using namespace ddmc;

struct EngineResult {
  std::string id;
  std::string variant;
  engine::EngineCapabilities caps;
  std::string config;  ///< the executed EngineConfig, engine-native axes
  double seconds = 0.0;
  double gflops = 0.0;
  double bytes = 0.0;  ///< per-run bytes moved as stamped by execute()
  double gbps = 0.0;   ///< bytes / wall seconds
  double modeled_gflops = 0.0;
  std::string modeled_note;
};

/// One trial-count point of the brute-force ↔ Fourier-domain sweep.
struct SweepPoint {
  std::size_t dms = 0;
  double cpu_tiled_seconds = 0.0;
  double fdmt_seconds = 0.0;
  const char* winner() const {
    return fdmt_seconds < cpu_tiled_seconds ? "fdmt" : "cpu_tiled";
  }
};

/// "16,64,256" -> {16, 64, 256}; empty string -> empty list (sweep off).
std::vector<std::size_t> parse_dm_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoul(item)));
  }
  return out;
}

/// The fdmt engine's native configuration for this bench: the default
/// split with the cache-blocking knob at its default, gcd-adapted so any
/// plan size runs.
engine::EngineConfig fdmt_native_config(const dedisp::Plan& plan,
                                        const engine::DedispEngine& eng) {
  engine::EngineConfig cfg;
  cfg.set("subbands", 32).set("coarse_step", 16).set("block", 2048);
  return eng.adapt_config(plan, cfg);
}

/// Best-of-\p reps wall seconds of \p eng on \p config (best-of, not mean:
/// the sweep compares two engines per point and minimum time is the
/// noise-robust comparator on a shared container host).
double best_of(const engine::DedispEngine& eng, const dedisp::Plan& plan,
               const engine::EngineConfig& config, ConstView2D<float> in,
               View2D<float> out, std::size_t reps) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch clock;
    eng.execute(plan, config, in, out);
    best = std::min(best, clock.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_engine_matrix",
          "throughput of every registered engine on one scenario");
  cli.add_option("dms", "number of trial DMs", "64");
  cli.add_option("out-samples", "output samples per trial", "10000");
  cli.add_option("reps", "timed repetitions", "3");
  cli.add_option("sweep-dms",
                 "comma-separated trial counts for the brute-force/fdmt "
                 "crossover sweep (empty: skip)",
                 "16,64,256,1024");
  cli.add_option("json", "write machine-readable results to this path", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto out_samples =
      static_cast<std::size_t>(cli.get_int("out-samples"));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));

  const sky::Observation obs = sky::apertif();
  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(obs, dms, out_samples);
  const double flop = plan.total_flop();

  // Tunable engines run their host-sweep optimum shape; the others ignore
  // the tile shape and take the always-valid 1×1 point. The optima differ
  // per engine — the u8 kernel packs 4× the samples per vector, which
  // shifts the register-tile and cache-block sweet spots (more DMs per
  // tile, a far larger channel block) — which is exactly why the engine id
  // is a tuning-cache signature axis.
  dedisp::KernelConfig tuned{50, 2, 4, 2, 32, 4};        // cpu_tiled (PR 1)
  dedisp::KernelConfig tuned_u8{125, 1, 8, 8, 128, 4};   // cpu_tiled_u8
  if (!tuned.divides(plan)) tuned = dedisp::KernelConfig{1, 1, 1, 1, 32, 4};
  if (!tuned_u8.divides(plan)) tuned_u8 = tuned;
  const dedisp::KernelConfig untuned{1, 1, 1, 1};

  // One shared input, wide enough for the largest declared input_padding.
  std::size_t max_padding = 0;
  for (const std::string& id : engine::EngineRegistry::instance().ids()) {
    max_padding = std::max(
        max_padding, engine::make_engine(id)->capabilities().input_padding);
  }
  Array2D<float> input(plan.channels(), plan.in_samples() + max_padding);
  Rng rng(99);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }

  // Perf-model anchors: the §V-D CPU model for the host engines, the
  // device model the simulator emulates for ocl_sim.
  const ocl::DeviceModel cpu_model = ocl::intel_xeon_e5_2620();
  const ocl::DeviceModel sim_device = ocl::amd_hd7970();
  const double cpu_model_gflops =
      ocl::estimate_cpu_baseline(cpu_model, plan).gflops;

  Array2D<float> reference_out(plan.dms(), plan.out_samples());
  engine::make_engine("reference")
      ->execute(plan, untuned, input.cview(), reference_out.view());

  std::vector<EngineResult> results;
  for (const std::string& id : engine::EngineRegistry::instance().ids()) {
    const auto eng = engine::make_engine(id);
    EngineResult res;
    res.id = id;
    res.variant = eng->variant();
    res.caps = eng->capabilities();
    // Tunable engines and the device simulator (whose *model* estimate is
    // config-sensitive even though its execution ignores nothing) run the
    // tuned shape; the rest take the always-valid 1×1 point. The fdmt
    // engine does not speak the kernel axes at all — it runs its own
    // native split/block configuration.
    engine::EngineConfig native;
    if (id == "fdmt") {
      native = fdmt_native_config(plan, *eng);
    } else {
      dedisp::KernelConfig shape =
          res.caps.tunable || id == "ocl_sim" ? tuned : untuned;
      if (id == "cpu_tiled_u8") shape = tuned_u8;
      // Keep only the axes the engine declares: the tiled engines get the
      // full six-axis shape, everyone else degrades to their defaults
      // instead of displaying a foreign config they ignore.
      native = engine::restrict_to_axes(engine::encode_kernel_config(shape),
                                        eng->config_axes(plan));
      if (id == "ocl_sim") native = engine::encode_kernel_config(shape);
    }
    res.config = native.to_string();

    Array2D<float> out(plan.dms(), plan.out_samples());
    const engine::EngineRun warmup =
        eng->execute(plan, native, input.cview(), out.view());
    res.bytes = warmup.bytes;  // element-size-aware analytic/counter bytes
    if (res.caps.bitwise_exact) {
      for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
        for (std::size_t t = 0; t < plan.out_samples(); ++t) {
          DDMC_REQUIRE(out(dm, t) == reference_out(dm, t),
                       "engine '" + id + "' diverged from the reference");
        }
      }
    } else if (id == "cpu_tiled_u8") {
      // Not bitwise, but the quantization error bound is documented —
      // enforce it differentially like the exact engines.
      const double bound =
          dedisp::quantization_error_bound(plan, eng->options().quant);
      for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
        for (std::size_t t = 0; t < plan.out_samples(); ++t) {
          DDMC_REQUIRE(std::abs(out(dm, t) - reference_out(dm, t)) <= bound,
                       "engine '" + id +
                           "' exceeded its quantization error bound");
        }
      }
    } else if (id == "fdmt") {
      // Not bitwise either, but the transform's error bound is documented
      // — enforce it differentially like the quantized engine's.
      const double bound =
          dedisp::fdmt_error_bound(plan, eng->options().subband,
                                   /*max_abs=*/1.0);
      for (std::size_t dm = 0; dm < plan.dms(); ++dm) {
        for (std::size_t t = 0; t < plan.out_samples(); ++t) {
          DDMC_REQUIRE(std::abs(out(dm, t) - reference_out(dm, t)) <= bound,
                       "engine '" + id +
                           "' exceeded its documented error bound");
        }
      }
    }
    double total = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      Stopwatch clock;
      eng->execute(plan, native, input.cview(), out.view());
      total += clock.seconds();
    }
    res.seconds = total / static_cast<double>(reps);
    res.gflops = flop / res.seconds * 1e-9;
    res.gbps = res.bytes / res.seconds * 1e-9;

    if (id == "ocl_sim") {
      // The functional simulator's wall time is simulation overhead; the
      // transferable number is the device model's estimate for this config.
      ocl::PlanAnalysis analysis(plan);
      res.modeled_gflops =
          ocl::estimate_performance(sim_device, analysis,
                                    engine::decode_kernel_config(native))
              .gflops;
      res.modeled_note = sim_device.name + " device model";
    } else if (id == "subband") {
      // The §V-D CPU model scaled by the two-stage flop reduction (the
      // paper metric credits the full brute-force FLOPs either way). Use
      // the same gcd-adapted split the engine actually ran — the default
      // {32, 16} need not divide small plans.
      const double ratio =
          flop / dedisp::subband_flop(
                     plan, eng->options().subband.adapted_to(plan));
      res.modeled_gflops = cpu_model_gflops * ratio;
      res.modeled_note = cpu_model.name + " model x two-stage flop ratio";
    } else if (id == "fdmt") {
      // Same idea for the transform: the CPU model scaled by how many
      // fewer operations the Fourier path performs than brute force on
      // this plan (a ratio < 1 at low trial counts — the transform's
      // fixed FFT cost — and > 1 once the rotation savings dominate).
      const dedisp::FdmtConfig cfg{eng->options().subband.adapted_to(plan),
                                   2048};
      const double ratio = flop / dedisp::fdmt_flop(plan, cfg);
      res.modeled_gflops = cpu_model_gflops * ratio;
      res.modeled_note = cpu_model.name + " model x transform flop ratio";
    } else {
      res.modeled_gflops = cpu_model_gflops;
      res.modeled_note = cpu_model.name + " cpu-baseline model";
    }
    results.push_back(res);
  }

  const std::size_t host_cpus =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::cout << "== engine matrix, " << obs.name() << ", " << dms << " DMs x "
            << out_samples << " samples, simd " << simd::backend_name()
            << ", host cpus " << host_cpus << " ==\n\n";

  TextTable table({"engine", "variant", "caps", "config", "ms", "GFLOP/s",
                   "MB moved", "GB/s", "modeled GFLOP/s"});
  for (const EngineResult& r : results) {
    std::string caps;
    caps += r.caps.supports_sharding ? 'S' : '-';
    caps += r.caps.supports_streaming ? 's' : '-';
    caps += r.caps.bitwise_exact ? 'B' : '-';
    caps += r.caps.tunable ? 'T' : '-';
    caps += r.caps.input_element_bytes == 1 ? 'q' : '-';
    table.add_row({r.id, r.variant, caps, r.config,
                   TextTable::num(r.seconds * 1e3, 1),
                   TextTable::num(r.gflops, 2),
                   TextTable::num(r.bytes * 1e-6, 1),
                   TextTable::num(r.gbps, 2),
                   TextTable::num(r.modeled_gflops, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(caps: S=sharding s=streaming B=bitwise T=tunable "
               "q=quantized-u8-input;\n GFLOP/s credits the full "
               "brute-force FLOPs, so the approximate subband and\n "
               "quantized engines score their wall-time win; bytes moved "
               "follow each engine's\n declared input element size)\n";

  // ------------------------------------------------- DM-count crossover --
  // Race the tuned brute-force engine against the Fourier-domain engine
  // over a ladder of trial counts: fdmt pays a fixed FFT cost but its
  // per-trial rotation work is asymptotically smaller, so it overtakes
  // cpu_tiled somewhere along the ladder — the crossover a deployment
  // would use to pick the engine per survey size.
  const std::vector<std::size_t> sweep_dms =
      parse_dm_list(cli.get("sweep-dms"));
  std::vector<SweepPoint> sweep;
  if (!sweep_dms.empty()) {
    const auto tiled_eng = engine::make_engine("cpu_tiled");
    const auto fdmt_eng = engine::make_engine("fdmt");
    for (const std::size_t n : sweep_dms) {
      const dedisp::Plan sweep_plan =
          dedisp::Plan::with_output_samples(obs, n, out_samples);
      dedisp::KernelConfig shape = tuned;
      if (!shape.divides(sweep_plan)) {
        shape = dedisp::KernelConfig{1, 1, 1, 1, 32, 4};
      }
      Array2D<float> in(sweep_plan.channels(), sweep_plan.in_samples());
      Rng sweep_rng(7 + n);
      for (std::size_t ch = 0; ch < in.rows(); ++ch) {
        for (auto& v : in.row(ch)) v = sweep_rng.next_float(-1.0f, 1.0f);
      }
      Array2D<float> out(sweep_plan.dms(), sweep_plan.out_samples());
      SweepPoint point;
      point.dms = n;
      point.cpu_tiled_seconds =
          best_of(*tiled_eng, sweep_plan, engine::encode_kernel_config(shape),
                  in.cview(), out.view(), reps);
      point.fdmt_seconds =
          best_of(*fdmt_eng, sweep_plan, fdmt_native_config(sweep_plan, *fdmt_eng),
                  in.cview(), out.view(), reps);
      sweep.push_back(point);
    }

    // Smallest swept trial count where the transform wins; 0 = never.
    std::size_t crossover = 0;
    for (const SweepPoint& p : sweep) {
      if (p.fdmt_seconds < p.cpu_tiled_seconds) {
        crossover = p.dms;
        break;
      }
    }

    std::cout << "\n== brute-force vs Fourier-domain, " << out_samples
              << " samples, best of " << reps << " ==\n\n";
    TextTable sweep_table({"DMs", "cpu_tiled ms", "fdmt ms", "winner"});
    for (const SweepPoint& p : sweep) {
      sweep_table.add_row({std::to_string(p.dms),
                           TextTable::num(p.cpu_tiled_seconds * 1e3, 1),
                           TextTable::num(p.fdmt_seconds * 1e3, 1),
                           p.winner()});
    }
    sweep_table.print(std::cout);
    if (crossover > 0) {
      std::cout << "\n(fdmt overtakes cpu_tiled at " << crossover
                << " trials on this host)\n";
    } else {
      std::cout << "\n(fdmt never overtakes cpu_tiled on this ladder)\n";
    }
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    bench::JsonArray arr;
    for (const EngineResult& r : results) {
      arr.add(bench::JsonObject()
                  .set("engine", r.id)
                  .set("variant", r.variant)
                  .set("supports_sharding", r.caps.supports_sharding)
                  .set("supports_streaming", r.caps.supports_streaming)
                  .set("bitwise_exact", r.caps.bitwise_exact)
                  .set("tunable", r.caps.tunable)
                  .set("input_padding", r.caps.input_padding)
                  .set("input_element_bytes", r.caps.input_element_bytes)
                  .set("config", r.config)
                  .set("seconds", r.seconds)
                  .set("gflops", r.gflops)
                  .set("bytes_moved", r.bytes)
                  .set("gbps", r.gbps)
                  .set("modeled_gflops", r.modeled_gflops)
                  .set("modeled_note", r.modeled_note));
    }
    bench::JsonObject root;
    root.set("bench", "bench_engine_matrix")
        .set("simd_backend", simd::backend_name())
        .set("host_cpus", host_cpus)
        .set_raw("plan", bench::JsonObject()
                             .set("observation", obs.name())
                             .set("dms", dms)
                             .set("out_samples", out_samples)
                             .set("channels", plan.channels())
                             .set("max_delay", plan.max_delay())
                             .dump())
        .set_raw("engines", arr.dump());
    if (!sweep.empty()) {
      bench::JsonArray sweep_arr;
      std::size_t crossover = 0;
      for (const SweepPoint& p : sweep) {
        if (crossover == 0 && p.fdmt_seconds < p.cpu_tiled_seconds) {
          crossover = p.dms;
        }
        sweep_arr.add(bench::JsonObject()
                          .set("dms", p.dms)
                          .set("cpu_tiled_seconds", p.cpu_tiled_seconds)
                          .set("fdmt_seconds", p.fdmt_seconds)
                          .set("winner", p.winner()));
      }
      root.set_raw("dm_sweep", sweep_arr.dump())
          .set("crossover_dms", crossover);
    }
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
