/// Reproduces **Fig. 2** (Apertif) and **Fig. 3** (LOFAR): the optimal
/// number of work-items per work-group found by auto-tuning, versus the
/// number of trial DMs, for the five Table I accelerators.
///
/// Paper's qualitative claims this bench should reproduce:
///  - the GTX 680 needs the most work-items (~1000–1024), the Xeon Phi the
///    fewest (16), the HD7970 pins its 256 hardware limit;
///  - optima are noisier at small instances and stabilize for larger ones;
///  - the same work-item count hides different 2-D shapes per setup (e.g.
///    32×32 on Apertif vs 250×4 on LOFAR for the GTX 680), reflecting how
///    much data-reuse the setup exposes.
///
/// --details prints the full 4-parameter tuples (the §IV-A output).

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace ddmc;

void run_setup(const sky::Observation& obs, std::size_t max_dms, bool csv,
               bool details, const char* figure) {
  const bench::SetupSweep sweep(obs, max_dms);
  std::cout << "== " << figure << ": tuned work-items per work-group, "
            << obs.name() << " ==\n";
  bench::print_series(
      std::cout, sweep, "work-items per work-group (wi_time x wi_dm)",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = sweep.results[d][i];
        if (!cell.result) return std::string("-");
        const dedisp::KernelConfig& cfg = cell.result->best.config;
        return std::to_string(cfg.work_group_size()) + " (" +
               std::to_string(cfg.wi_time) + "x" +
               std::to_string(cfg.wi_dm) + ")";
      },
      csv);
  if (details) {
    bench::print_series(
        std::cout, sweep, "full tuples {wi_time,wi_dm,elem_time,elem_dm}",
        [&](std::size_t d, std::size_t i) {
          const auto& cell = sweep.results[d][i];
          if (!cell.result) return std::string("-");
          const dedisp::KernelConfig& c = cell.result->best.config;
          return std::to_string(c.wi_time) + "/" + std::to_string(c.wi_dm) +
                 "/" + std::to_string(c.elem_time) + "/" +
                 std::to_string(c.elem_dm);
        },
        csv);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ddmc::Cli cli("bench_fig02_03_workitems",
                "Figs. 2-3: tuned work-items per work-group vs #DMs");
  cli.add_flag("details", "also print the full 4-parameter tuples");
  if (!ddmc::bench::parse_bench_cli(cli, argc, argv)) return 0;
  const auto max_dms = static_cast<std::size_t>(cli.get_int("max-dms"));
  const bool csv = cli.get_flag("csv");
  const bool details = cli.get_flag("details");
  run_setup(ddmc::sky::apertif(), max_dms, csv, details, "Fig. 2");
  run_setup(ddmc::sky::lofar(), max_dms, csv, details, "Fig. 3");
  return 0;
}
