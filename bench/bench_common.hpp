#pragma once
/// Shared machinery for the figure benches: run the paper's full sweep
/// (5 accelerators × 12 instances × 2 setups) on the performance model and
/// print gnuplot-ready series in both human and CSV form.
///
/// Every figure bench accepts --max-dms to shorten the instance ladder and
/// --csv to emit only machine-readable output. The wall-clock benches
/// (bench_host_kernels, bench_host_tuning) accept --json <path> and persist
/// their results through the minimal JSON emitters below, seeding the perf
/// trajectory across PRs.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/expect.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "dedisp/plan.hpp"
#include "ocl/device_presets.hpp"
#include "ocl/perf_model.hpp"
#include "sky/observation.hpp"
#include "tuner/tuner.hpp"

namespace ddmc::bench {

struct SweepCell {
  std::optional<tuner::TuningResult> result;  ///< empty: out of device memory
};

/// One observational setup's sweep: results[device][instance].
struct SetupSweep {
  sky::Observation obs;
  std::vector<std::size_t> instances;
  std::vector<ocl::DeviceModel> devices;
  std::vector<std::vector<SweepCell>> results;
  /// Plan analyses aligned with instances (shared across devices).
  std::vector<ocl::PlanAnalysis> analyses;

  SetupSweep(const sky::Observation& o, std::size_t max_dms,
             bool keep_population = false)
      : obs(o),
        instances(sky::paper_instances(max_dms)),
        devices(ocl::table1_devices()) {
    analyses.reserve(instances.size());
    for (std::size_t dms : instances) {
      analyses.emplace_back(dedisp::Plan(obs, dms));
    }
    tuner::TuningOptions opt;
    opt.keep_population = keep_population;
    results.resize(devices.size());
    for (std::size_t d = 0; d < devices.size(); ++d) {
      results[d].resize(instances.size());
      for (std::size_t i = 0; i < instances.size(); ++i) {
        if (!ocl::fits_in_memory(devices[d], analyses[i].plan())) {
          continue;  // §IV-A: instance exceeds device memory
        }
        results[d][i].result = tuner::tune(devices[d], analyses[i], opt);
      }
    }
  }
};

/// Standard CLI for figure benches. Returns false if --help was requested.
inline bool parse_bench_cli(Cli& cli, int argc, const char* const* argv) {
  cli.add_option("max-dms", "largest instance of the DM ladder", "4096");
  cli.add_flag("csv", "emit only CSV output");
  return cli.parse(argc, argv);
}

// ------------------------------------------------------------------- json --
// One JSON emission path for the whole repository: the builders live in
// common/json.hpp (the telemetry exporters share them); these aliases keep
// the benches' historical bench::JsonObject spelling.

using JsonObject = json::Object;
using JsonArray = json::Array;

inline std::string json_escape(const std::string& s) {
  return json::escape(s);
}

inline std::string json_number(double v) { return json::number(v); }

/// Write \p root to \p path (pretty enough: one object, trailing newline).
/// Throws ddmc::invalid_argument when the file cannot be opened.
inline void write_json_file(const std::string& path, const JsonObject& root) {
  json::write_file(path, root);
}

/// Print a per-device series table: one row per instance, one column per
/// device, cell text from `cell(device_index, instance_index)`.
template <typename CellFn>
void print_series(std::ostream& os, const SetupSweep& sweep,
                  const std::string& value_label, CellFn cell, bool csv) {
  std::vector<std::string> header = {"DMs"};
  for (const auto& dev : sweep.devices) header.push_back(dev.name);
  TextTable table(header);
  for (std::size_t i = 0; i < sweep.instances.size(); ++i) {
    std::vector<std::string> row = {std::to_string(sweep.instances[i])};
    for (std::size_t d = 0; d < sweep.devices.size(); ++d) {
      row.push_back(cell(d, i));
    }
    table.add_row(std::move(row));
  }
  if (csv) {
    os << "# " << value_label << "\n";
    table.print_csv(os);
  } else {
    os << value_label << "\n";
    table.print(os);
    os << "\n";
  }
}

}  // namespace ddmc::bench
