/// Real measured throughput of the host kernels on this machine: the
/// sequential reference, the §V-D-style CPU baseline, and the tiled kernel
/// in its scalar (seed) and SIMD engines across representative kernel
/// configurations plus a channel_block × unroll grid. This is the "actually
/// runs" half of the repository — wall-clock, not modeled.
///
/// The workload is a reduced Apertif instance (full channel count, reduced
/// output window) so a run completes in seconds on a laptop-class CPU.
///
///   ./bench_host_kernels [--dms 32] [--out-samples 2000] [--reps 3]
///                        [--threads 1] [--json BENCH_host_kernels.json]
///
/// The JSON output records GFLOP/s per entry and a summary with the
/// tuned-SIMD-over-seed-scalar speedup — the number the perf trajectory
/// tracks across PRs.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/array2d.hpp"
#include "common/expect.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "dedisp/cpu_baseline.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/cpu_kernel_u8.hpp"
#include "dedisp/quantize.hpp"
#include "dedisp/reference.hpp"
#include "sky/observation.hpp"

namespace {

using namespace ddmc;

struct Entry {
  std::string name;
  std::string engine;  // "reference", "baseline", "scalar", "simd", "simd_u8"
  dedisp::KernelConfig config;
  bool tiled = false;
  bool stage_rows = true;
  std::size_t elem_bytes = sizeof(float);  // stored input sample size
  double seconds = 0.0;
  double gflops = 0.0;
  double bytes = 0.0;  // analytic bytes moved: elem·c·in + 4·d·out
  double gbps = 0.0;
};

template <typename Fn>
double time_mean_seconds(Fn&& fn, std::size_t reps) {
  fn();  // warmup
  double total = 0.0;
  for (std::size_t i = 0; i < reps; ++i) {
    Stopwatch clock;
    fn();
    total += clock.seconds();
  }
  return total / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_host_kernels",
          "measured throughput of the host dedispersion kernels");
  cli.add_option("dms", "number of trial DMs", "32");
  cli.add_option("out-samples", "output window in samples", "2000");
  cli.add_option("reps", "timed repetitions per kernel", "3");
  cli.add_option("threads", "worker threads (1 = inline)", "1");
  cli.add_option("json", "write machine-readable results to this path", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto dms = static_cast<std::size_t>(cli.get_int("dms"));
  const auto out_samples =
      static_cast<std::size_t>(cli.get_int("out-samples"));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

  const dedisp::Plan plan =
      dedisp::Plan::with_output_samples(sky::apertif(), dms, out_samples);
  Array2D<float> input(plan.channels(), plan.in_samples());
  Rng rng(1234);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
  Array2D<float> output(plan.dms(), plan.out_samples());
  const double flop = plan.total_flop();

  // Analytic bytes-moved floor at a given stored input sample size: the
  // whole input plane read once plus the float output written once. The
  // u8 kernel's input term is a quarter of the float kernels' — the
  // number this bench exists to make visible next to GFLOP/s.
  auto bytes_moved = [&](std::size_t elem_bytes) {
    return static_cast<double>(elem_bytes) *
               static_cast<double>(plan.channels()) *
               static_cast<double>(plan.in_samples()) +
           4.0 * static_cast<double>(plan.dms()) *
               static_cast<double>(plan.out_samples());
  };

  std::vector<Entry> entries;
  auto record = [&](Entry e, double seconds) {
    e.seconds = seconds;
    e.gflops = flop / seconds * 1e-9;
    e.bytes = bytes_moved(e.elem_bytes);
    e.gbps = e.bytes / seconds * 1e-9;
    entries.push_back(std::move(e));
  };

  // Ground truth and the §V-D comparator.
  record({"reference", "reference"}, time_mean_seconds([&] {
           dedisp::dedisperse_reference(plan, input.cview(), output.view());
         }, reps));
  {
    dedisp::CpuBaselineOptions opt;
    opt.threads = threads;
    record({"cpu_baseline", "baseline"}, time_mean_seconds([&] {
             dedisp::dedisperse_cpu_baseline(plan, input.cview(),
                                             output.view(), opt);
           }, reps));
  }

  // The seed bench's representative tile shapes.
  const std::vector<dedisp::KernelConfig> shapes = {
      {100, 1, 1, 1},  // thin tiles, no reuse window (the seed default)
      {100, 1, 4, 4},  // 4x4 elements per item
      {25, 4, 4, 4},   // square-ish tile
      {10, 8, 10, 4},  // DM-deep tile, maximal reuse window
  };

  auto run_tiled = [&](const dedisp::KernelConfig& cfg, bool vectorize,
                       bool stage_rows) {
    dedisp::CpuKernelOptions opt;
    opt.stage_rows = stage_rows;
    opt.vectorize = vectorize;
    opt.threads = threads;
    return time_mean_seconds([&] {
      dedisp::dedisperse_cpu(plan, cfg, input.cview(), output.view(), opt);
    }, reps);
  };
  auto add_tiled = [&](const dedisp::KernelConfig& cfg, bool vectorize,
                       bool stage_rows) {
    if (!cfg.divides(plan)) {
      std::cout << "skipping " << cfg.to_string()
                << " (tiles do not divide this plan)\n";
      return;
    }
    Entry e;
    e.name = std::string(vectorize ? "tiled_simd" : "tiled_scalar") +
             (stage_rows ? "" : "_unstaged") + " " + cfg.to_string();
    e.engine = vectorize ? "simd" : "scalar";
    e.config = cfg;
    e.tiled = true;
    e.stage_rows = stage_rows;
    record(std::move(e), run_tiled(cfg, vectorize, stage_rows));
  };

  // Scalar engine (the seed's inner loop) over the seed shapes, staged and
  // unstaged — the pre-SIMD, pre-tuning baseline.
  for (const auto& cfg : shapes) add_tiled(cfg, false, true);
  add_tiled(shapes[2], false, false);

  // SIMD engine over the same shapes (like-for-like), then the widened
  // tuner axes: channel_block × unroll on every shape.
  for (const auto& cfg : shapes) add_tiled(cfg, true, true);
  add_tiled(shapes[2], true, false);
  for (const auto& base : shapes) {
    for (std::size_t cb : {std::size_t{64}, std::size_t{256}}) {
      for (std::size_t un : {std::size_t{1}, std::size_t{4}}) {
        dedisp::KernelConfig cfg = base;
        cfg.channel_block = cb;
        cfg.unroll = un;
        add_tiled(cfg, true, true);
      }
    }
  }

  // The quantized u8 kernel over the same shapes: same tiling, a quarter
  // of the input bytes streamed (samples stay one byte until the register
  // tile widens them).
  {
    const dedisp::QuantizationParams quant;
    const Array2D<std::uint8_t> qplane =
        dedisp::quantize_plane(plan, input.cview(), quant);
    dedisp::CpuKernelOptions opt;
    opt.threads = threads;
    for (const auto& cfg : shapes) {
      if (!cfg.divides(plan)) continue;
      Entry e;
      e.name = "tiled_u8 " + cfg.to_string();
      e.engine = "simd_u8";
      e.config = cfg;
      e.tiled = true;
      e.elem_bytes = sizeof(std::uint8_t);
      record(std::move(e), time_mean_seconds([&] {
               dedisp::dedisperse_cpu_u8(plan, cfg, qplane.cview(), quant,
                                         output.view(), opt);
             }, reps));
    }
  }

  // Tuned = best SIMD entry of the grid above; seed = the scalar engine on
  // the seed's default thin-tile shape.
  const Entry* seed_scalar = nullptr;
  const Entry* best_scalar = nullptr;
  const Entry* best_simd = nullptr;
  for (const Entry& e : entries) {
    if (e.engine == "scalar" && e.stage_rows) {
      if (!seed_scalar) seed_scalar = &e;  // first scalar entry = seed shape
      if (!best_scalar || e.gflops > best_scalar->gflops) best_scalar = &e;
    }
    if (e.engine == "simd" &&
        (!best_simd || e.gflops > best_simd->gflops)) {
      best_simd = &e;
    }
  }

  DDMC_REQUIRE(seed_scalar != nullptr && best_simd != nullptr,
               "no tiled shape divides this plan; pick --dms/--out-samples "
               "with more divisors");

  std::cout << "== measured host kernels, Apertif-reduced, " << dms
            << " DMs x " << out_samples << " samples, "
            << plan.channels() << " channels, simd backend "
            << simd::backend_name() << " ==\n\n";
  TextTable table({"kernel", "GFLOP/s", "ms", "MB moved", "GB/s"});
  for (const Entry& e : entries) {
    table.add_row({e.name, TextTable::num(e.gflops, 2),
                   TextTable::num(e.seconds * 1e3, 1),
                   TextTable::num(e.bytes * 1e-6, 1),
                   TextTable::num(e.gbps, 2)});
  }
  table.print(std::cout);
  std::cout << "\nseed scalar (tiled " << seed_scalar->config.to_string()
            << "): " << TextTable::num(seed_scalar->gflops, 2)
            << " GFLOP/s\nbest scalar: "
            << TextTable::num(best_scalar->gflops, 2)
            << " GFLOP/s\ntuned SIMD (" << best_simd->config.to_string()
            << "): " << TextTable::num(best_simd->gflops, 2)
            << " GFLOP/s\nspeedup tuned SIMD vs seed scalar: "
            << TextTable::num(best_simd->gflops / seed_scalar->gflops, 2)
            << "x\nspeedup tuned SIMD vs best scalar: "
            << TextTable::num(best_simd->gflops / best_scalar->gflops, 2)
            << "x\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    bench::JsonArray arr;
    for (const Entry& e : entries) {
      bench::JsonObject o;
      o.set("name", e.name).set("engine", e.engine);
      if (e.tiled) {
        o.set("wi_time", e.config.wi_time)
            .set("wi_dm", e.config.wi_dm)
            .set("elem_time", e.config.elem_time)
            .set("elem_dm", e.config.elem_dm)
            .set("channel_block", e.config.channel_block)
            .set("unroll", e.config.unroll)
            .set("stage_rows", e.stage_rows);
      }
      o.set("seconds", e.seconds)
          .set("gflops", e.gflops)
          .set("input_element_bytes", e.elem_bytes)
          .set("bytes_moved", e.bytes)
          .set("gbps", e.gbps);
      arr.add(o);
    }
    bench::JsonObject root;
    root.set("bench", "bench_host_kernels")
        .set("simd_backend", simd::backend_name())
        .set("simd_lanes", simd::kFloatLanes)
        .set("threads", threads)
        .set_raw("plan", bench::JsonObject()
                             .set("observation", "Apertif")
                             .set("dms", dms)
                             .set("out_samples", out_samples)
                             .set("channels", plan.channels())
                             .dump())
        .set_raw("entries", arr.dump())
        .set_raw("summary",
                 bench::JsonObject()
                     .set("seed_scalar_gflops", seed_scalar->gflops)
                     .set("best_scalar_gflops", best_scalar->gflops)
                     .set("tuned_simd_gflops", best_simd->gflops)
                     .set("tuned_simd_config", best_simd->config.to_string())
                     .set("speedup_tuned_simd_vs_seed_scalar",
                          best_simd->gflops / seed_scalar->gflops)
                     .set("speedup_tuned_simd_vs_best_scalar",
                          best_simd->gflops / best_scalar->gflops)
                     .dump());
    bench::write_json_file(json_path, root);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
