/// Real measured throughput (google-benchmark) of the host kernels on this
/// machine: the sequential reference, the §V-D-style CPU baseline, and the
/// tiled kernel with and without row staging, across representative kernel
/// configurations. This is the "actually runs" half of the repository —
/// unlike the figure benches, these numbers are wall-clock, not modeled.
///
/// The workload is a reduced Apertif instance (full channel count, reduced
/// output window) so a run completes in seconds on a laptop-class CPU.

#include <benchmark/benchmark.h>

#include "common/array2d.hpp"
#include "common/random.hpp"
#include "dedisp/cpu_baseline.hpp"
#include "dedisp/cpu_kernel.hpp"
#include "dedisp/reference.hpp"
#include "sky/observation.hpp"

namespace {

using namespace ddmc;

struct Workload {
  dedisp::Plan plan;
  Array2D<float> input;
  Array2D<float> output;
};

/// Reduced Apertif: 1,024 channels, 2,000-sample window, 32 trials.
Workload make_workload(std::size_t dms = 32, std::size_t out_samples = 2000) {
  dedisp::Plan plan =
      dedisp::Plan::with_output_samples(sky::apertif(), dms, out_samples);
  Array2D<float> input(plan.channels(), plan.in_samples());
  Rng rng(1234);
  for (std::size_t ch = 0; ch < input.rows(); ++ch) {
    for (auto& v : input.row(ch)) v = rng.next_float(-1.0f, 1.0f);
  }
  Array2D<float> output(plan.dms(), plan.out_samples());
  return {std::move(plan), std::move(input), std::move(output)};
}

void set_rate_counters(benchmark::State& state, const dedisp::Plan& plan) {
  const double flop = plan.total_flop();
  state.counters["GFLOP/s"] = benchmark::Counter(
      flop * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  state.counters["GB/s(in)"] = benchmark::Counter(
      4.0 * flop * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_Reference(benchmark::State& state) {
  Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dedisp::dedisperse_reference(w.plan, w.input.cview(), w.output.view());
    benchmark::DoNotOptimize(w.output.view().data());
  }
  set_rate_counters(state, w.plan);
}
BENCHMARK(BM_Reference)->Arg(8)->Arg(32)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_CpuBaseline(benchmark::State& state) {
  Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  dedisp::CpuBaselineOptions opt;
  opt.threads = 0;  // machine-sized pool
  for (auto _ : state) {
    dedisp::dedisperse_cpu_baseline(w.plan, w.input.cview(), w.output.view(),
                                    opt);
    benchmark::DoNotOptimize(w.output.view().data());
  }
  set_rate_counters(state, w.plan);
}
BENCHMARK(BM_CpuBaseline)->Arg(8)->Arg(32)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Tiled kernel, staged rows: args = (dms, wi_time, wi_dm, et, ed).
void BM_TiledStaged(benchmark::State& state) {
  Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  const dedisp::KernelConfig cfg{
      static_cast<std::size_t>(state.range(1)),
      static_cast<std::size_t>(state.range(2)),
      static_cast<std::size_t>(state.range(3)),
      static_cast<std::size_t>(state.range(4))};
  dedisp::CpuKernelOptions opt;
  opt.stage_rows = true;
  for (auto _ : state) {
    dedisp::dedisperse_cpu(w.plan, cfg, w.input.cview(), w.output.view(),
                           opt);
    benchmark::DoNotOptimize(w.output.view().data());
  }
  set_rate_counters(state, w.plan);
}
BENCHMARK(BM_TiledStaged)
    ->Args({32, 100, 1, 1, 1})   // thin tiles, no reuse window
    ->Args({32, 100, 1, 4, 4})   // 4x4 elements per item
    ->Args({32, 25, 4, 4, 4})    // square-ish tile
    ->Args({32, 10, 8, 10, 4})   // DM-deep tile, maximal reuse window
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TiledUnstaged(benchmark::State& state) {
  Workload w = make_workload(static_cast<std::size_t>(state.range(0)));
  const dedisp::KernelConfig cfg{
      static_cast<std::size_t>(state.range(1)),
      static_cast<std::size_t>(state.range(2)),
      static_cast<std::size_t>(state.range(3)),
      static_cast<std::size_t>(state.range(4))};
  dedisp::CpuKernelOptions opt;
  opt.stage_rows = false;
  for (auto _ : state) {
    dedisp::dedisperse_cpu(w.plan, cfg, w.input.cview(), w.output.view(),
                           opt);
    benchmark::DoNotOptimize(w.output.view().data());
  }
  set_rate_counters(state, w.plan);
}
BENCHMARK(BM_TiledUnstaged)
    ->Args({32, 100, 1, 4, 4})
    ->Args({32, 25, 4, 4, 4})
    ->Args({32, 10, 8, 10, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
