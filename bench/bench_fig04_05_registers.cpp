/// Reproduces **Fig. 4** (Apertif) and **Fig. 5** (LOFAR): the optimal
/// number of accumulator registers per work-item (elem_time × elem_dm)
/// found by auto-tuning, versus the number of trial DMs.
///
/// Paper's qualitative claims this bench should reproduce:
///  - K20 and GTX Titan top the chart (their GK110 allows 255 registers per
///    thread; the GTX 680's GK104 caps at 63), e.g. 25×4 = 100 on Apertif;
///  - under LOFAR fewer registers are chosen (25×2 = 50 on K20/Titan): less
///    reuse to exploit, so the tuner trades registers for parallelism;
///  - the HD7970 keeps its work-items light.

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace ddmc;

void run_setup(const sky::Observation& obs, std::size_t max_dms, bool csv,
               const char* figure) {
  const bench::SetupSweep sweep(obs, max_dms);
  std::cout << "== " << figure << ": tuned registers per work-item, "
            << obs.name() << " ==\n";
  bench::print_series(
      std::cout, sweep, "accumulators per work-item (elem_time x elem_dm)",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = sweep.results[d][i];
        if (!cell.result) return std::string("-");
        const dedisp::KernelConfig& cfg = cell.result->best.config;
        return std::to_string(cfg.accumulators_per_item()) + " (" +
               std::to_string(cfg.elem_time) + "x" +
               std::to_string(cfg.elem_dm) + ")";
      },
      csv);
}

}  // namespace

int main(int argc, char** argv) {
  ddmc::Cli cli("bench_fig04_05_registers",
                "Figs. 4-5: tuned registers per work-item vs #DMs");
  if (!ddmc::bench::parse_bench_cli(cli, argc, argv)) return 0;
  const auto max_dms = static_cast<std::size_t>(cli.get_int("max-dms"));
  const bool csv = cli.get_flag("csv");
  run_setup(ddmc::sky::apertif(), max_dms, csv, "Fig. 4");
  run_setup(ddmc::sky::lofar(), max_dms, csv, "Fig. 5");
  return 0;
}
