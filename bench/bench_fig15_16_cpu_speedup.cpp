/// Reproduces **Fig. 15** (Apertif) and **Fig. 16** (LOFAR): the speedup of
/// the tuned many-core kernel over the optimized CPU implementation of
/// §V-D (Intel Xeon E5-2620; threads over DMs and time blocks, 8-sample
/// AVX chunks) — both sides evaluated through the same performance model.
///
/// Paper's qualitative claims this bench should reproduce:
///  - Apertif: tens× for the GPUs (up to ~60× on the HD7970), ~10× for the
///    Phi;
///  - LOFAR: compressed to ≈2–13×;
///  - accelerators are an order of magnitude ahead of a server CPU on this
///    kernel, which is the paper's case for many-core dedispersion.

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace ddmc;

void run_setup(const sky::Observation& obs, std::size_t max_dms, bool csv,
               const char* figure) {
  const bench::SetupSweep sweep(obs, max_dms);
  const ocl::DeviceModel cpu = ocl::intel_xeon_e5_2620();

  std::vector<double> cpu_gflops;
  cpu_gflops.reserve(sweep.instances.size());
  for (const auto& analysis : sweep.analyses) {
    cpu_gflops.push_back(
        ocl::estimate_cpu_baseline(cpu, analysis.plan()).gflops);
  }

  std::cout << "== " << figure << ": speedup over the " << cpu.name
            << " CPU implementation, " << obs.name() << " ==\n";
  if (!csv) {
    std::cout << "CPU baseline at the largest instance: "
              << TextTable::num(cpu_gflops.back(), 2) << " GFLOP/s\n\n";
  }
  bench::print_series(
      std::cout, sweep, "tuned accelerator GFLOP/s / CPU GFLOP/s",
      [&](std::size_t d, std::size_t i) {
        const auto& cell = sweep.results[d][i];
        if (!cell.result || cpu_gflops[i] <= 0.0) return std::string("-");
        return TextTable::num(cell.result->best.perf.gflops / cpu_gflops[i],
                              1);
      },
      csv);
}

}  // namespace

int main(int argc, char** argv) {
  ddmc::Cli cli("bench_fig15_16_cpu_speedup",
                "Figs. 15-16: speedup over the CPU implementation");
  if (!ddmc::bench::parse_bench_cli(cli, argc, argv)) return 0;
  const auto max_dms = static_cast<std::size_t>(cli.get_int("max-dms"));
  const bool csv = cli.get_flag("csv");
  run_setup(ddmc::sky::apertif(), max_dms, csv, "Fig. 15");
  run_setup(ddmc::sky::lofar(), max_dms, csv, "Fig. 16");
  return 0;
}
